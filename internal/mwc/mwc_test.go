package mwc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
)

func TestValidate(t *testing.T) {
	g := graph.New(3)
	if err := (&Instance{G: g, Terminals: []graph.V{0, 1}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Instance{G: g, Terminals: []graph.V{0, 0}}).Validate(); err == nil {
		t.Fatal("duplicate terminal accepted")
	}
	if err := (&Instance{G: g, Terminals: []graph.V{5}}).Validate(); err == nil {
		t.Fatal("out-of-range terminal accepted")
	}
}

func TestSolveExactPath(t *testing.T) {
	// Path s1 - a - s2: cutting one edge separates the terminals.
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	in := &Instance{G: g, Terminals: []graph.V{0, 2}}
	cut, group := in.SolveExact()
	if cut != 1 {
		t.Fatalf("cut=%d, want 1", cut)
	}
	if in.CutSize(group) != 1 {
		t.Fatal("reported assignment does not realize the cut")
	}
}

func TestSolveExactTriangleTerminals(t *testing.T) {
	// Triangle of terminals: all 3 edges must go.
	g := graph.New(3)
	g.AddClique(0, 1, 2)
	in := &Instance{G: g, Terminals: []graph.V{0, 1, 2}}
	cut, _ := in.SolveExact()
	if cut != 3 {
		t.Fatalf("cut=%d, want 3", cut)
	}
}

func TestSolveExactStar(t *testing.T) {
	// Star: center c adjacent to terminals s1,s2,s3. Min cut = 2 (keep the
	// center with one terminal).
	g := graph.New(4)
	g.AddEdge(3, 0)
	g.AddEdge(3, 1)
	g.AddEdge(3, 2)
	in := &Instance{G: g, Terminals: []graph.V{0, 1, 2}}
	cut, group := in.SolveExact()
	if cut != 2 {
		t.Fatalf("cut=%d, want 2", cut)
	}
	// Terminals keep their groups.
	for ti, term := range in.Terminals {
		if group[term] != ti {
			t.Fatal("terminal moved out of its group")
		}
	}
}

func TestSolveExactDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	in := &Instance{G: g, Terminals: []graph.V{0, 2}}
	cut, _ := in.SolveExact()
	if cut != 0 {
		t.Fatalf("already separated, cut=%d", cut)
	}
}

func TestSeparates(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	in := &Instance{G: g, Terminals: []graph.V{0, 2}}
	if in.Separates(map[[2]graph.V]bool{}) {
		t.Fatal("no removal should not separate")
	}
	if !in.Separates(map[[2]graph.V]bool{{0, 1}: true}) {
		t.Fatal("removing (0,1) separates the path")
	}
}

// The exact solver's assignment always separates the terminals when its
// crossing edges are removed, and no smaller edge set does (checked by
// enumeration on tiny instances).
func TestQuickExactOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := Random(rng, 7, 0.4, 3)
		if in.Validate() != nil {
			return false
		}
		cut, group := in.SolveExact()
		if in.CutSize(group) != cut {
			return false
		}
		// The crossing edges separate.
		removed := map[[2]graph.V]bool{}
		for _, e := range in.G.Edges() {
			if group[e[0]] != group[e[1]] {
				removed[e] = true
			}
		}
		if !in.Separates(removed) {
			return false
		}
		// No strictly smaller edge subset separates (enumerate subsets of
		// size < cut — fine for tiny graphs).
		edges := in.G.Edges()
		if len(edges) > 16 {
			return true // skip enumeration when too big
		}
		for mask := 0; mask < 1<<len(edges); mask++ {
			if popcount(mask) >= cut {
				continue
			}
			rm := map[[2]graph.V]bool{}
			for i, e := range edges {
				if mask&(1<<i) != 0 {
					rm[e] = true
				}
			}
			if in.Separates(rm) {
				return false // found smaller cut: solver not optimal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
