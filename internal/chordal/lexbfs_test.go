package chordal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
)

func TestLexBFSOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomER(rng, 30, 0.2)
	order := LexBFSOrder(g)
	if len(order) != g.N() {
		t.Fatalf("order length %d", len(order))
	}
	seen := make([]bool, g.N())
	for _, v := range order {
		if seen[v] {
			t.Fatal("duplicate vertex")
		}
		seen[v] = true
	}
}

// LexBFS and MCS agree on chordality for both chordal and non-chordal
// inputs.
func TestQuickLexBFSAgreesWithMCS(t *testing.T) {
	f := func(seed int64, nRaw uint8, useChordal bool) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		var g *graph.Graph
		if useChordal {
			g = graph.RandomChordal(rng, n, 10, 4)
		} else {
			g = graph.RandomER(rng, n, 0.3)
		}
		return IsChordalLexBFS(g) == IsChordal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLexBFSKnownCases(t *testing.T) {
	if !IsChordalLexBFS(complete(5)) {
		t.Fatal("K5 is chordal")
	}
	if IsChordalLexBFS(cycle(4)) {
		t.Fatal("C4 is not chordal")
	}
	if !IsChordalLexBFS(graph.New(7)) {
		t.Fatal("edgeless is chordal")
	}
}

// On chordal graphs, the LexBFS order is a valid PEO usable by Omega and
// the coloring.
func TestLexBFSPEOUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomChordal(rng, 20, 12, 4)
		lex := LexBFSOrder(g)
		if !IsPEO(g, lex) {
			t.Fatal("LexBFS order not a PEO on a chordal graph")
		}
		mcs := MCSOrder(g)
		if Omega(g, lex) != Omega(g, mcs) {
			t.Fatal("ω disagrees between PEOs")
		}
		col := ColorWithPEO(g, lex)
		if !col.Proper(g) || col.NumColors() != Omega(g, lex) {
			t.Fatal("LexBFS coloring not optimal")
		}
	}
}
