package chordal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
)

func TestCliqueTreeSmall(t *testing.T) {
	// Path of cliques: {0,1} - {1,2} - {2,3}.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	ct, ok := NewCliqueTree(g)
	if !ok {
		t.Fatal("path is chordal")
	}
	if ct.NumNodes() != 3 {
		t.Fatalf("nodes=%d, want 3", ct.NumNodes())
	}
	if err := ct.SubtreeConnected(); err != nil {
		t.Fatal(err)
	}
	// Vertex 1 is in exactly two cliques; its subtree must be 2 nodes.
	if len(ct.Member[1]) != 2 {
		t.Fatalf("member[1]=%v", ct.Member[1])
	}
}

func TestCliqueTreeRejectsNonChordal(t *testing.T) {
	c4 := graph.New(4)
	c4.AddEdge(0, 1)
	c4.AddEdge(1, 2)
	c4.AddEdge(2, 3)
	c4.AddEdge(3, 0)
	if _, ok := NewCliqueTree(c4); ok {
		t.Fatal("C4 must be rejected")
	}
}

func TestCliqueTreePath(t *testing.T) {
	// Star of cliques around vertex 0: {0,1}, {0,2}, {0,3}.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	ct, ok := NewCliqueTree(g)
	if !ok {
		t.Fatal("star is chordal")
	}
	if ct.NumNodes() != 3 {
		t.Fatalf("nodes=%d, want 3", ct.NumNodes())
	}
	from, to := 0, 2
	path, ok := ct.Path(from, to)
	if !ok {
		t.Fatal("tree is connected: path must exist")
	}
	if path[0] != from || path[len(path)-1] != to {
		t.Fatalf("path %v does not link %d to %d", path, from, to)
	}
	// Single-node path.
	p, ok := ct.Path(1, 1)
	if !ok || len(p) != 1 {
		t.Fatalf("self path=%v", p)
	}
}

func TestCliqueTreeForestDisconnected(t *testing.T) {
	// Two disjoint edges: 2 cliques in different components.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	ct, ok := NewCliqueTree(g)
	if !ok {
		t.Fatal("chordal")
	}
	if ct.NumNodes() != 2 {
		t.Fatalf("nodes=%d", ct.NumNodes())
	}
	if _, ok := ct.Path(0, 1); ok {
		t.Fatal("disconnected cliques must have no path")
	}
}

func TestVertexPathInterval(t *testing.T) {
	// Path of cliques {0,1}-{1,2}-{2,3}; vertex 1 lives on a contiguous
	// prefix of the clique path from its first to last occurrence.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	ct, _ := NewCliqueTree(g)
	// Identify the two end cliques (containing 0 and 3).
	var end0, end3 int = -1, -1
	for i := range ct.Cliques {
		if ct.Contains(i, 0) {
			end0 = i
		}
		if ct.Contains(i, 3) {
			end3 = i
		}
	}
	path, ok := ct.Path(end0, end3)
	if !ok || len(path) != 3 {
		t.Fatalf("path=%v", path)
	}
	lo, hi, ok := ct.VertexPathInterval(path, 1)
	if !ok || lo != 0 || hi != 1 {
		t.Fatalf("interval of vertex 1 = [%d,%d],%v, want [0,1]", lo, hi, ok)
	}
	if _, _, ok := ct.VertexPathInterval(path[2:], 0); ok {
		t.Fatal("vertex 0 not on trimmed path")
	}
}

// Property: clique trees of random chordal graphs satisfy the induced
// subtree property and enumerate cliques covering all edges; subtree ∩ path
// is always contiguous.
func TestQuickCliqueTreeJunctionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 2
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomChordal(rng, n, 12, 4)
		ct, ok := NewCliqueTree(g)
		if !ok {
			return false
		}
		if ct.SubtreeConnected() != nil {
			return false
		}
		// Contiguity of subtree ∩ path for random clique pairs.
		if ct.NumNodes() >= 2 {
			for trial := 0; trial < 5; trial++ {
				a := rng.Intn(ct.NumNodes())
				b := rng.Intn(ct.NumNodes())
				path, ok := ct.Path(a, b)
				if !ok {
					continue
				}
				for v := 0; v < g.N(); v++ {
					lo, hi, ok := ct.VertexPathInterval(path, graph.V(v))
					if !ok {
						continue
					}
					for i := lo; i <= hi; i++ {
						if !ct.Contains(path[i], graph.V(v)) {
							return false // gap: not an interval
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ω computed from the clique tree must match Omega from the PEO.
func TestCliqueTreeOmegaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomChordal(rng, 20, 12, 4)
		peo, _ := PEO(g)
		want := Omega(g, peo)
		ct, _ := NewCliqueTree(g)
		got := 0
		for _, c := range ct.Cliques {
			if len(c) > got {
				got = len(c)
			}
		}
		if got != want {
			t.Fatalf("max clique size %d != ω %d", got, want)
		}
	}
}
