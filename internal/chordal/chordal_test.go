package chordal

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
)

func cycle(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(graph.V(i), graph.V((i+1)%n))
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	g.AddClique(g.Vertices()...)
	return g
}

func TestIsChordalBasics(t *testing.T) {
	if !IsChordal(graph.New(0)) || !IsChordal(graph.New(5)) {
		t.Fatal("edgeless graphs are chordal")
	}
	if !IsChordal(complete(5)) {
		t.Fatal("complete graphs are chordal")
	}
	if !IsChordal(cycle(3)) {
		t.Fatal("triangle is chordal")
	}
	if IsChordal(cycle(4)) {
		t.Fatal("C4 is not chordal")
	}
	if IsChordal(cycle(5)) {
		t.Fatal("C5 is not chordal")
	}
	// C4 plus one chord is chordal.
	g := cycle(4)
	g.AddEdge(0, 2)
	if !IsChordal(g) {
		t.Fatal("C4+chord is chordal")
	}
	// Trees are chordal.
	tree := graph.New(6)
	tree.AddEdge(0, 1)
	tree.AddEdge(0, 2)
	tree.AddEdge(1, 3)
	tree.AddEdge(1, 4)
	tree.AddEdge(2, 5)
	if !IsChordal(tree) {
		t.Fatal("trees are chordal")
	}
}

func TestIsPEOValidation(t *testing.T) {
	g := cycle(4)
	g.AddEdge(0, 2)
	// 1,3,0,2 eliminates the two simplicial corners first: a valid PEO.
	if !IsPEO(g, []graph.V{1, 3, 0, 2}) {
		t.Fatal("1,3,0,2 should be a PEO of C4+chord(0,2)")
	}
	// 0,... is not: 0's later neighbors {1,2,3} are not a clique (1,3 not
	// adjacent).
	if IsPEO(g, []graph.V{0, 1, 2, 3}) {
		t.Fatal("0 first cannot start a PEO here")
	}
	// Malformed orders.
	if IsPEO(g, []graph.V{0, 1, 2}) {
		t.Fatal("short order accepted")
	}
	if IsPEO(g, []graph.V{0, 0, 1, 2}) {
		t.Fatal("duplicate order accepted")
	}
}

func TestOmega(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{graph.New(0), 0},
		{graph.New(4), 1},
		{complete(5), 5},
		{cycle(3), 3},
	}
	for i, c := range cases {
		peo, ok := PEO(c.g)
		if !ok {
			t.Fatalf("case %d: not chordal?", i)
		}
		if got := Omega(c.g, peo); got != c.want {
			t.Errorf("case %d: omega=%d, want %d", i, got, c.want)
		}
	}
}

func TestColorOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomChordal(rng, 25, 15, 4)
		col, omega, ok := Color(g)
		if !ok {
			t.Fatal("RandomChordal produced a non-chordal graph")
		}
		if !col.Proper(g) {
			t.Fatalf("improper coloring: %v", col.Check(g))
		}
		if col.NumColors() != omega {
			t.Fatalf("chordal coloring used %d colors, want ω=%d", col.NumColors(), omega)
		}
	}
	if _, _, ok := Color(cycle(4)); ok {
		t.Fatal("coloring C4 as chordal should fail")
	}
}

// Property 1 of the paper: a k-colorable chordal graph is
// greedy-k-colorable — equivalently col(G) = ω(G) for chordal G.
func TestProperty1ChordalGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomChordal(rng, 20, 12, 4)
		peo, ok := PEO(g)
		if !ok {
			t.Fatal("not chordal")
		}
		omega := Omega(g, peo)
		if !greedy.IsGreedyKColorable(g, omega) {
			t.Fatalf("chordal graph with ω=%d not greedy-%d-colorable", omega, omega)
		}
		if got := greedy.ColoringNumber(g); got != omega {
			t.Fatalf("col=%d, ω=%d: must be equal on chordal graphs", got, omega)
		}
	}
}

// Property 2 of the paper, chordality part: G chordal iff CliqueLift(G, p)
// chordal.
func TestProperty2Chordal(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomChordal(rng, 12, 8, 3)
		lifted, _ := g.CliqueLift(2)
		if !IsChordal(lifted) {
			t.Fatal("clique lift of chordal graph must be chordal")
		}
	}
	// And a non-chordal graph stays non-chordal.
	lifted, _ := cycle(4).CliqueLift(2)
	if IsChordal(lifted) {
		t.Fatal("clique lift of C4 must stay non-chordal")
	}
}

func TestSimplicialVertex(t *testing.T) {
	g := cycle(4)
	if _, ok := SimplicialVertex(g); ok {
		t.Fatal("C4 has no simplicial vertex")
	}
	g.AddEdge(0, 2)
	v, ok := SimplicialVertex(g)
	if !ok {
		t.Fatal("C4+chord has simplicial vertices")
	}
	if v != 1 && v != 3 {
		t.Fatalf("simplicial vertex %d should be a corner (1 or 3)", int(v))
	}
}

func TestMaximalCliquesSmall(t *testing.T) {
	// Two triangles sharing an edge: cliques {0,1,2} and {1,2,3}.
	g := graph.New(4)
	g.AddClique(0, 1, 2)
	g.AddClique(1, 2, 3)
	cliques, ok := MaximalCliques(g)
	if !ok {
		t.Fatal("graph is chordal")
	}
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques, want 2: %v", len(cliques), cliques)
	}
	for _, c := range cliques {
		if len(c) != 3 {
			t.Fatalf("clique %v has wrong size", c)
		}
	}
}

// Cross-check Blair–Peyton maximal clique enumeration against brute-force
// subset filtering on random chordal graphs.
func TestQuickMaximalCliques(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomChordal(rng, 14, 9, 3)
		peo, ok := PEO(g)
		if !ok {
			return false
		}
		got := MaximalCliquesPEO(g, peo)
		want := bruteMaximalCliques(g, peo)
		if len(got) != len(want) {
			return false
		}
		key := func(c []graph.V) string {
			s := append([]graph.V(nil), c...)
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			out := ""
			for _, v := range s {
				out += string(rune('A' + int(v)))
			}
			return out
		}
		gotKeys := map[string]bool{}
		for _, c := range got {
			if !g.IsClique(c) {
				return false
			}
			gotKeys[key(c)] = true
		}
		for _, c := range want {
			if !gotKeys[key(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// bruteMaximalCliques builds all PEO candidate cliques and filters
// non-maximal ones by pairwise subset checks.
func bruteMaximalCliques(g *graph.Graph, peo []graph.V) [][]graph.V {
	pos := make([]int, g.N())
	for i, v := range peo {
		pos[v] = i
	}
	var candidates [][]graph.V
	for _, v := range peo {
		c := []graph.V{v}
		g.ForEachNeighbor(v, func(w graph.V) {
			if pos[w] > pos[v] {
				c = append(c, w)
			}
		})
		candidates = append(candidates, c)
	}
	isSubset := func(a, b []graph.V) bool {
		in := map[graph.V]bool{}
		for _, v := range b {
			in[v] = true
		}
		for _, v := range a {
			if !in[v] {
				return false
			}
		}
		return true
	}
	var out [][]graph.V
	for i, c := range candidates {
		maximal := true
		for j, d := range candidates {
			if i != j && len(c) <= len(d) && isSubset(c, d) {
				if len(c) < len(d) || i > j {
					maximal = false
					break
				}
			}
		}
		if maximal {
			out = append(out, c)
		}
	}
	return out
}

// Every vertex of a chordal graph must appear in at least one maximal
// clique, and cliques must cover all edges.
func TestMaximalCliquesCover(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomChordal(rng, 18, 10, 4)
		cliques, ok := MaximalCliques(g)
		if !ok {
			t.Fatal("not chordal")
		}
		seen := make([]bool, g.N())
		for _, c := range cliques {
			for _, v := range c {
				seen[v] = true
			}
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("vertex %d not in any maximal clique", v)
			}
		}
		for _, e := range g.Edges() {
			covered := false
			for _, c := range cliques {
				has := func(x graph.V) bool {
					for _, v := range c {
						if v == x {
							return true
						}
					}
					return false
				}
				if has(e[0]) && has(e[1]) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("edge %v not inside any maximal clique", e)
			}
		}
	}
}

func TestRandomChordalIsChordal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomChordal(rng, n, 10, 4)
		return IsChordal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalGraphsAreChordal(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%25) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomInterval(rng, n, 30, 6)
		return IsChordal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
