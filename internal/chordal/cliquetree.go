package chordal

import (
	"fmt"
	"sort"

	"regcoal/internal/graph"
)

// CliqueTree is a clique tree (junction tree) of a chordal graph: nodes are
// the maximal cliques, edges form a maximum-weight spanning forest of the
// clique-intersection graph, and for every vertex v the set of nodes whose
// cliques contain v induces a connected subtree T_v. This is the
// representation behind the paper's Theorem 1 (SSA live ranges are subtrees
// of the dominance tree) and the data structure of the Theorem 5 algorithm.
type CliqueTree struct {
	// Cliques holds the maximal cliques, each sorted by vertex id.
	Cliques [][]graph.V
	// Adj is the tree adjacency: Adj[i] lists the neighbors of clique i.
	Adj [][]int
	// Member maps each vertex of the underlying graph to the sorted list of
	// clique indices containing it (its subtree T_v).
	Member [][]int
}

// NewCliqueTree builds a clique tree of g. ok=false if g is not chordal.
// Construction: enumerate maximal cliques from a PEO, weight clique pairs by
// intersection size, and take a maximum-weight spanning forest (Kruskal);
// for chordal graphs any maximum-weight spanning tree of the clique
// intersection graph is a valid clique tree.
func NewCliqueTree(g *graph.Graph) (*CliqueTree, bool) {
	peo, ok := PEO(g)
	if !ok {
		return nil, false
	}
	cliques := MaximalCliquesPEO(g, peo)
	for _, c := range cliques {
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	}
	t := &CliqueTree{
		Cliques: cliques,
		Adj:     make([][]int, len(cliques)),
		Member:  make([][]int, g.N()),
	}
	for i, c := range cliques {
		for _, v := range c {
			t.Member[v] = append(t.Member[v], i)
		}
	}
	for _, m := range t.Member {
		sort.Ints(m)
	}
	// Intersection weights: for each vertex in multiple cliques, bump every
	// pair of cliques containing it.
	type edge struct {
		a, b, w int
	}
	weights := make(map[[2]int]int)
	for _, m := range t.Member {
		for i := 0; i < len(m); i++ {
			for j := i + 1; j < len(m); j++ {
				weights[[2]int{m[i], m[j]}]++
			}
		}
	}
	edges := make([]edge, 0, len(weights))
	for pair, w := range weights {
		edges = append(edges, edge{a: pair[0], b: pair[1], w: w})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].w != edges[j].w {
			return edges[i].w > edges[j].w // max weight first
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	uf := graph.NewPartition(len(cliques))
	for _, e := range edges {
		if uf.Same(graph.V(e.a), graph.V(e.b)) {
			continue
		}
		uf.Union(graph.V(e.a), graph.V(e.b))
		t.Adj[e.a] = append(t.Adj[e.a], e.b)
		t.Adj[e.b] = append(t.Adj[e.b], e.a)
	}
	return t, true
}

// NumNodes reports the number of tree nodes (maximal cliques).
func (t *CliqueTree) NumNodes() int { return len(t.Cliques) }

// Contains reports whether clique node i contains vertex v.
func (t *CliqueTree) Contains(i int, v graph.V) bool {
	c := t.Cliques[i]
	j := sort.Search(len(c), func(k int) bool { return c[k] >= v })
	return j < len(c) && c[j] == v
}

// Path returns the unique tree path from clique node `from` to clique node
// `to`, inclusive, or ok=false when they lie in different components of the
// forest.
func (t *CliqueTree) Path(from, to int) ([]int, bool) {
	if from == to {
		return []int{from}, true
	}
	prev := make([]int, len(t.Cliques))
	for i := range prev {
		prev[i] = -2
	}
	prev[from] = -1
	queue := []int{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range t.Adj[n] {
			if prev[m] != -2 {
				continue
			}
			prev[m] = n
			if m == to {
				var path []int
				for cur := to; cur != -1; cur = prev[cur] {
					path = append(path, cur)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, true
			}
			queue = append(queue, m)
		}
	}
	return nil, false
}

// SubtreeConnected reports whether, for every vertex, the clique nodes
// containing it induce a connected subtree — the defining property of a
// clique tree. It is used by tests to certify the construction.
func (t *CliqueTree) SubtreeConnected() error {
	for v, m := range t.Member {
		if len(m) <= 1 {
			continue
		}
		in := make(map[int]bool, len(m))
		for _, i := range m {
			in[i] = true
		}
		// BFS within the member set from m[0].
		seen := map[int]bool{m[0]: true}
		queue := []int{m[0]}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, w := range t.Adj[n] {
				if in[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if len(seen) != len(m) {
			return fmt.Errorf("chordal: subtree of vertex %d disconnected: reached %d of %d cliques", v, len(seen), len(m))
		}
	}
	return nil
}

// VertexPathInterval intersects vertex v's subtree with a tree path
// (a slice of clique node ids) and returns the index range [lo, hi] of path
// positions whose cliques contain v, or ok=false when the intersection is
// empty. For a valid clique tree the intersection of a subtree with a path
// is always contiguous, which is what makes the paper's Figure 5 interval
// view work; callers can trust lo..hi with no gaps.
func (t *CliqueTree) VertexPathInterval(path []int, v graph.V) (lo, hi int, ok bool) {
	lo, hi = -1, -1
	for i, n := range path {
		if t.Contains(n, v) {
			if lo == -1 {
				lo = i
			}
			hi = i
		}
	}
	if lo == -1 {
		return 0, 0, false
	}
	return lo, hi, true
}
