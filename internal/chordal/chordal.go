// Package chordal implements chordal graph machinery: recognition via
// maximum cardinality search (MCS), perfect elimination orders (PEO),
// clique number, optimal coloring, maximal clique enumeration, and clique
// trees (the subtree-of-a-tree representation of Golumbic, Thm 4.8, that the
// paper's Theorem 1 and Theorem 5 are built on).
//
// A graph is chordal iff every cycle of length at least 4 has a chord, iff
// it admits a perfect elimination order, iff it is the intersection graph of
// subtrees of a tree. Interference graphs of strict SSA programs are chordal
// (paper, Theorem 1).
package chordal

import (
	"sync"

	"regcoal/internal/graph"
)

// mcsScratch is the pooled working set of MCSOrder: recognition runs on
// every chordal-incremental probe of the service portfolio, so the
// weights, visited flags, and lazy buckets are recycled across runs via
// a Reset(n)-style lifecycle instead of re-allocated per call.
type mcsScratch struct {
	weight     []int
	visited    []bool
	buckets    [][]graph.V
	visitOrder []graph.V
}

var mcsPool = sync.Pool{New: func() any { return new(mcsScratch) }}

func (s *mcsScratch) reset(n int) {
	s.weight = graph.ReuseSlice(s.weight, n)
	s.visited = graph.ReuseSlice(s.visited, n)
	s.buckets = graph.ReuseRows(s.buckets, n+1)
	s.visitOrder = s.visitOrder[:0]
}

// MCSOrder runs maximum cardinality search and returns a vertex order that
// is a perfect elimination order iff the graph is chordal. The returned
// slice is in elimination order: order[0] is eliminated first. MCS visits
// vertices by decreasing already-visited-neighbor count; the visit order
// reversed is the candidate PEO. Runs in O(V + E) over pooled scratch.
func MCSOrder(g *graph.Graph) []graph.V {
	n := g.N()
	s := mcsPool.Get().(*mcsScratch)
	defer mcsPool.Put(s)
	s.reset(n)
	weight := s.weight
	visited := s.visited
	// buckets[w] holds vertices of current weight w (with stale entries
	// skipped lazily).
	buckets := s.buckets
	for v := 0; v < n; v++ {
		buckets[0] = append(buckets[0], graph.V(v))
	}
	visitOrder := s.visitOrder
	maxW := 0
	for len(visitOrder) < n {
		// Find the current max bucket with a live entry.
		var v graph.V = -1
		for maxW >= 0 {
			b := buckets[maxW]
			for len(b) > 0 {
				cand := b[len(b)-1]
				b = b[:len(b)-1]
				if !visited[cand] && weight[cand] == maxW {
					v = cand
					break
				}
			}
			buckets[maxW] = b
			if v != -1 {
				break
			}
			maxW--
		}
		if v == -1 {
			break // defensive; cannot happen
		}
		visited[v] = true
		visitOrder = append(visitOrder, v)
		g.ForEachNeighbor(v, func(w graph.V) {
			if visited[w] {
				return
			}
			weight[w]++
			buckets[weight[w]] = append(buckets[weight[w]], w)
			if weight[w] > maxW {
				maxW = weight[w]
			}
		})
	}
	// Keep the (possibly regrown) visit buffer pooled for the next run.
	s.visitOrder = visitOrder
	// Elimination order is the reverse of the visit order.
	peo := make([]graph.V, n)
	for i, v := range visitOrder {
		peo[n-1-i] = v
	}
	return peo
}

// IsPEO reports whether order is a perfect elimination order of g: for each
// vertex, its neighbors occurring later in the order form a clique. The
// check uses the Tarjan–Yannakakis trick — it suffices that the
// later-neighbors minus the earliest of them ("the parent") are all
// adjacent to the parent — and runs in O(V + E) adjacency probes.
func IsPEO(g *graph.Graph, order []graph.V) bool {
	n := g.N()
	if len(order) != n {
		return false
	}
	ar := graph.GetArena()
	defer ar.Release()
	pos := ar.Ints(n)
	seen := ar.Bools(n)
	for i, v := range order {
		if v < 0 || int(v) >= n || seen[v] {
			return false
		}
		seen[v] = true
		pos[v] = i
	}
	for _, v := range order {
		parent := graph.V(-1)
		best := n
		g.ForEachNeighbor(v, func(w graph.V) {
			if pos[w] > pos[v] && pos[w] < best {
				best, parent = pos[w], w
			}
		})
		if parent == -1 {
			continue
		}
		ok := true
		g.ForEachNeighbor(v, func(w graph.V) {
			if w != parent && pos[w] > pos[v] && !g.HasEdge(parent, w) {
				ok = false
			}
		})
		if !ok {
			return false
		}
	}
	return true
}

// IsChordal reports whether g is chordal.
func IsChordal(g *graph.Graph) bool {
	return IsPEO(g, MCSOrder(g))
}

// PEO returns a perfect elimination order of g, or ok=false if g is not
// chordal.
func PEO(g *graph.Graph) ([]graph.V, bool) {
	order := MCSOrder(g)
	if !IsPEO(g, order) {
		return nil, false
	}
	return order, true
}

// Omega computes the clique number ω(g) of a chordal graph given a PEO:
// the largest 1 + |later neighbors| over all vertices. The result is
// meaningless if order is not a PEO of g.
func Omega(g *graph.Graph, peo []graph.V) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	pos := make([]int, n)
	for i, v := range peo {
		pos[v] = i
	}
	best := 1
	for _, v := range peo {
		later := 0
		g.ForEachNeighbor(v, func(w graph.V) {
			if pos[w] > pos[v] {
				later++
			}
		})
		if later+1 > best {
			best = later + 1
		}
	}
	return best
}

// Color optimally colors a chordal graph with ω(g) colors by assigning, in
// reverse PEO, the lowest color unused among already-colored neighbors.
// It returns the coloring and ω. ok=false if g is not chordal.
func Color(g *graph.Graph) (graph.Coloring, int, bool) {
	peo, ok := PEO(g)
	if !ok {
		return nil, 0, false
	}
	col := ColorWithPEO(g, peo)
	return col, Omega(g, peo), true
}

// ColorWithPEO colors g greedily in reverse elimination order. For a
// chordal g with a valid PEO this uses exactly ω(g) colors. The
// used-color scratch is one reused slice (colors are < MaxDegree+1), not
// a per-vertex map.
func ColorWithPEO(g *graph.Graph, peo []graph.V) graph.Coloring {
	col := graph.NewColoring(g.N())
	used := make([]int, g.MaxDegree()+2) // used[c] == stamp means c is taken
	stamp := 0
	for i := len(peo) - 1; i >= 0; i-- {
		v := peo[i]
		stamp++
		g.ForEachNeighbor(v, func(w graph.V) {
			if c := col[w]; c != graph.NoColor && c < len(used) {
				used[c] = stamp
			}
		})
		c := 0
		for used[c] == stamp {
			c++
		}
		col[v] = c
	}
	return col
}

// MaximalCliques enumerates the maximal cliques of a chordal graph in
// O(V + E) using the Blair–Peyton criterion: with a PEO, the candidate
// clique of v is {v} ∪ later-neighbors(v), and it is maximal unless some
// vertex u with parent u = v satisfies |later(u)| = |later(v)| + 1 (its
// candidate then strictly contains v's). ok=false if g is not chordal.
func MaximalCliques(g *graph.Graph) ([][]graph.V, bool) {
	peo, ok := PEO(g)
	if !ok {
		return nil, false
	}
	return MaximalCliquesPEO(g, peo), true
}

// MaximalCliquesPEO is MaximalCliques for a caller that already holds a
// valid PEO.
func MaximalCliquesPEO(g *graph.Graph, peo []graph.V) [][]graph.V {
	n := g.N()
	if n == 0 {
		return nil
	}
	pos := make([]int, n)
	for i, v := range peo {
		pos[v] = i
	}
	laterCount := make([]int, n)
	parent := make([]graph.V, n)
	for v := 0; v < n; v++ {
		parent[v] = -1
	}
	for _, v := range peo {
		best := n
		g.ForEachNeighbor(v, func(w graph.V) {
			if pos[w] > pos[v] {
				laterCount[v]++
				if pos[w] < best {
					best = pos[w]
					parent[v] = w
				}
			}
		})
	}
	// v's candidate is subsumed iff a child u has |later(u)| = |later(v)|+1.
	subsumed := make([]bool, n)
	for v := 0; v < n; v++ {
		if p := parent[v]; p != -1 && laterCount[v] == laterCount[p]+1 {
			subsumed[p] = true
		}
	}
	var cliques [][]graph.V
	for _, v := range peo {
		if subsumed[v] {
			continue
		}
		c := []graph.V{v}
		g.ForEachNeighbor(v, func(w graph.V) {
			if pos[w] > pos[v] {
				c = append(c, w)
			}
		})
		cliques = append(cliques, c)
	}
	return cliques
}

// SimplicialVertex returns a simplicial vertex of g (one whose neighborhood
// is a clique), or ok=false if none exists. Every chordal graph has one
// (Dirac); this is the basis of the paper's Property 1 proof.
//
// The clique check is word-parallel: N(v) is a clique iff for every
// w ∈ N(v), N(v) \ N(w) ⊆ {w} — three bitset words at a time, with no
// per-vertex neighbor-slice allocation.
func SimplicialVertex(g *graph.Graph) (graph.V, bool) {
	var buf []graph.V
	for v := 0; v < g.N(); v++ {
		rowV := g.BitsetNeighbors(graph.V(v))
		buf = g.NeighborsInto(buf, graph.V(v))
		simplicial := true
		for _, w := range buf {
			rowW := g.BitsetNeighbors(w)
			for i := range rowV {
				diff := rowV[i] &^ rowW[i]
				// The only tolerated leftover is w itself (w ∉ N(w)).
				if int(w)>>6 == i {
					diff &^= 1 << (uint(w) & 63)
				}
				if diff != 0 {
					simplicial = false
					break
				}
			}
			if !simplicial {
				break
			}
		}
		if simplicial {
			return graph.V(v), true
		}
	}
	return -1, false
}
