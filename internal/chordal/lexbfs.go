package chordal

import (
	"regcoal/internal/graph"
)

// LexBFSOrder runs lexicographic breadth-first search and returns the
// vertex order in elimination order (order[0] eliminated first): like MCS,
// the reverse of a LexBFS visit order is a perfect elimination order iff
// the graph is chordal (Rose, Tarjan & Lueker). Having two independent
// recognition orders lets tests cross-check the chordality machinery.
//
// Implementation: partition refinement over an ordered list of vertex
// groups; visiting a vertex splits each group into (neighbors,
// non-neighbors), keeping neighbors first.
func LexBFSOrder(g *graph.Graph) []graph.V {
	n := g.N()
	type group struct {
		members []graph.V
	}
	groups := []*group{{members: g.Vertices()}}
	visited := make([]bool, n)
	visit := make([]graph.V, 0, n)
	for len(visit) < n {
		// First non-empty group's first member.
		for len(groups) > 0 && len(groups[0].members) == 0 {
			groups = groups[1:]
		}
		if len(groups) == 0 {
			break
		}
		v := groups[0].members[0]
		groups[0].members = groups[0].members[1:]
		visited[v] = true
		visit = append(visit, v)
		// Membership in N(v) is an O(1) probe on the bitset row — the old
		// per-visit map copy of the neighborhood is gone.
		isNeighbor := g.BitsetNeighbors(v)
		// Split every group into neighbors-first halves.
		var next []*group
		for _, gr := range groups {
			var in, out []graph.V
			for _, w := range gr.members {
				if !visited[w] && isNeighbor.Get(w) {
					in = append(in, w)
				} else {
					out = append(out, w)
				}
			}
			if len(in) > 0 {
				next = append(next, &group{members: in})
			}
			if len(out) > 0 {
				next = append(next, &group{members: out})
			}
		}
		groups = next
	}
	peo := make([]graph.V, n)
	for i, v := range visit {
		peo[n-1-i] = v
	}
	return peo
}

// IsChordalLexBFS recognizes chordality via LexBFS (an independent check
// against the MCS-based IsChordal).
func IsChordalLexBFS(g *graph.Graph) bool {
	return IsPEO(g, LexBFSOrder(g))
}
