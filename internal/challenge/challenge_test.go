package challenge

import (
	"math/rand"
	"strings"
	"testing"

	"regcoal/internal/chordal"
	"regcoal/internal/graph"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

func TestFromSSA(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := ir.DefaultRandomParams()
	inst, err := FromSSA(rng, params, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	st := inst.Describe()
	if st.Vertices == 0 || st.K != 6 {
		t.Fatalf("stats: %+v", st)
	}
	if err := inst.File.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round-trips through the textual format.
	text := inst.File.FormatString()
	back, err := graph.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.G.N() != st.Vertices || back.G.NumAffinities() != st.Moves {
		t.Fatal("format round trip changed instance")
	}
}

func TestFromSSAReduced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	params := ir.DefaultRandomParams()
	params.Vars = 8
	k := 5
	inst, err := FromSSA(rng, params, k, true)
	if err != nil {
		t.Skipf("pressure reduction failed: %v", err)
	}
	if !strings.Contains(inst.Name, "reduced") {
		t.Fatal("name should record reduction")
	}
}

func TestSyntheticKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range []Kind{KindChordal, KindInterval, KindPermutation, KindER} {
		inst := Synthetic(rng, kind, 25, 6)
		if err := inst.File.G.Validate(); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !strings.Contains(inst.Name, kind.String()) {
			t.Fatalf("name %q missing kind", inst.Name)
		}
	}
	// Chordal/interval kinds really are chordal.
	for _, kind := range []Kind{KindChordal, KindInterval} {
		inst := Synthetic(rng, kind, 20, 6)
		if !chordal.IsChordal(inst.File.G) {
			t.Fatalf("%v instance not chordal", kind)
		}
	}
}

func TestCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	corpus, err := Corpus(rng, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) != 8 {
		t.Fatalf("corpus size %d", len(corpus))
	}
	names := map[string]int{}
	for _, inst := range corpus {
		names[inst.Name]++
		if inst.File.K != 6 {
			t.Fatalf("instance %s has k=%d", inst.Name, inst.File.K)
		}
	}
}

func TestSSAInstanceHasMoves(t *testing.T) {
	// The diamond's lowering must produce at least one move and hence an
	// affinity in the instance.
	_, low, err := ssa.Pipeline(ir.Diamond())
	if err != nil {
		t.Fatal(err)
	}
	g, _ := ssa.BuildInterference(low)
	if g.NumAffinities() == 0 {
		t.Fatal("lowered diamond must carry affinities")
	}
}
