// Package challenge generates and describes coalescing-challenge instances
// in the spirit of the Appel–George "coalescing challenge" the paper's
// conclusion references. The original challenge distributed interference
// graphs with move edges dumped from the SML/NJ compiler for a 6-register
// x86 model; offline, we regenerate instances of the same shape from two
// sources:
//
//   - SSA-derived: random mini-IR programs pushed through SSA construction
//     and out-of-SSA lowering, optionally pressure-reduced to k first (the
//     two-phase setting that makes coalescing hard), then dumped as
//     interference graphs with move affinities;
//   - synthetic: structured graph-class generators (chordal, interval,
//     permutation gadgets) with sprinkled affinities.
//
// Instances serialize in the textual format of graph.File.
package challenge

import (
	"fmt"
	"math/rand"

	"regcoal/internal/graph"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

// Instance is one challenge instance.
type Instance struct {
	Name string
	File *graph.File
}

// Stats summarizes an instance.
type Stats struct {
	Vertices, Edges, Moves int
	MoveWeight             int64
	K                      int
}

// Describe computes instance statistics.
func (in *Instance) Describe() Stats {
	return Stats{
		Vertices:   in.File.G.N(),
		Edges:      in.File.G.E(),
		Moves:      in.File.G.NumAffinities(),
		MoveWeight: in.File.G.TotalAffinityWeight(),
		K:          in.File.K,
	}
}

// FromSSA generates an instance by running a random program through the
// SSA pipeline. When reduce is true, register pressure is first lowered to
// k by spill-everywhere — the aggressive-spilling two-phase setting in
// which the paper observes that conservative coalescing struggles.
func FromSSA(rng *rand.Rand, params ir.RandomParams, k int, reduce bool) (*Instance, error) {
	fn := ir.Random(rng, params)
	_, low, err := ssa.Pipeline(fn)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("ssa-v%d-b%d-k%d", params.Vars, params.Blocks, k)
	if reduce {
		if _, ok := ssa.ReduceMaxlive(low, k); !ok {
			return nil, fmt.Errorf("challenge: cannot reduce pressure to %d", k)
		}
		name += "-reduced"
	}
	g, _ := ssa.BuildInterference(low)
	g.NormalizeAffinities()
	return &Instance{Name: name, File: &graph.File{G: g, K: k}}, nil
}

// Synthetic generates a structured instance: kind selects the generator.
type Kind int

const (
	// KindChordal is a random chordal graph with sprinkled affinities.
	KindChordal Kind = iota
	// KindInterval is a random interval graph with sprinkled affinities.
	KindInterval
	// KindPermutation is the Figure 3 permutation gadget (p = k/2 + 1).
	KindPermutation
	// KindER is a plain random graph with sprinkled affinities.
	KindER
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindChordal:
		return "chordal"
	case KindInterval:
		return "interval"
	case KindPermutation:
		return "permutation"
	case KindER:
		return "er"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Synthetic builds a synthetic instance with n vertices for k registers.
func Synthetic(rng *rand.Rand, kind Kind, n, k int) *Instance {
	var g *graph.Graph
	switch kind {
	case KindChordal:
		g = graph.RandomChordal(rng, n, n/2+1, 4)
		graph.SprinkleAffinities(rng, g, n, 8)
	case KindInterval:
		g = graph.RandomInterval(rng, n, 2*n, 6)
		graph.SprinkleAffinities(rng, g, n, 8)
	case KindPermutation:
		p := k/2 + 1
		g, _, _ = graph.Permutation(p)
	case KindER:
		g = graph.RandomER(rng, n, 0.15)
		graph.SprinkleAffinities(rng, g, n, 8)
	default:
		panic(fmt.Sprintf("challenge: unknown kind %d", int(kind)))
	}
	g.NormalizeAffinities()
	return &Instance{
		Name: fmt.Sprintf("%s-n%d-k%d", kind, n, k),
		File: &graph.File{G: g, K: k},
	}
}

// Corpus generates a mixed corpus of count instances for k registers.
func Corpus(rng *rand.Rand, count, k int) ([]*Instance, error) {
	var out []*Instance
	kinds := []Kind{KindChordal, KindInterval, KindER}
	for i := 0; len(out) < count; i++ {
		switch i % 3 {
		case 0, 1:
			params := ir.DefaultRandomParams()
			params.Vars = 5 + rng.Intn(6)
			params.Blocks = 4 + rng.Intn(6)
			inst, err := FromSSA(rng, params, k, i%2 == 1)
			if err != nil {
				continue // pressure reduction can fail; skip
			}
			out = append(out, inst)
		default:
			out = append(out, Synthetic(rng, kinds[i%len(kinds)], 20+rng.Intn(30), k))
		}
	}
	return out, nil
}
