package cluster_test

// Routing tests for the delta-session endpoint: a session must stay
// shard-sticky — the worker that created it (picked by base-graph hash)
// answers every subsequent delta and close that echoes base_hash.

import (
	"encoding/json"
	"net/http"
	"testing"

	"regcoal/internal/cluster"
	"regcoal/internal/service"
	"regcoal/internal/session"
)

func TestDeltaSessionShardSticky(t *testing.T) {
	c := startCluster(t, 3, cluster.InProcessOptions{})

	// A handful of distinct base graphs so the sessions spread over the
	// ring (with 3 workers, 8 bases all but surely hit at least two).
	shards := make(map[string]bool)
	for base := 0; base < 8; base++ {
		spec := &service.GraphSpec{Vertices: 6 + base, K: 3}
		for v := 1; v < spec.Vertices; v++ {
			spec.Edges = append(spec.Edges, [2]int{v - 1, v})
		}
		spec.Moves = append(spec.Moves, service.Move{X: 0, Y: spec.Vertices - 1, Weight: 7})

		body, err := json.Marshal(service.DeltaRequest{Op: "create", Graph: spec})
		if err != nil {
			t.Fatal(err)
		}
		status, hdr, respBody := post(t, c.RouterURL+"/v1/coalesce/delta", body)
		if status != http.StatusOK {
			t.Fatalf("create: status %d: %s", status, respBody)
		}
		var created service.DeltaResponse
		if err := json.Unmarshal(respBody, &created); err != nil {
			t.Fatal(err)
		}
		if created.SessionID == "" || created.BaseHash == "" {
			t.Fatalf("create response missing ids: %s", respBody)
		}
		owner := hdr.Get("X-Regcoal-Shard")
		if owner == "" {
			t.Fatalf("create response missing shard header")
		}
		shards[owner] = true

		// Ten deltas echoing base_hash: every one must land on the
		// creating shard and apply in order.
		for i := 0; i < 10; i++ {
			v := int64(i)
			dbody, err := json.Marshal(service.DeltaRequest{
				SessionID: created.SessionID,
				BaseHash:  created.BaseHash,
				Version:   &v,
				Deltas:    []session.Delta{{Op: session.OpAddVertex}},
			})
			if err != nil {
				t.Fatal(err)
			}
			status, dhdr, dresp := post(t, c.RouterURL+"/v1/coalesce/delta", dbody)
			if status != http.StatusOK {
				t.Fatalf("delta %d: status %d: %s", i, status, dresp)
			}
			if got := dhdr.Get("X-Regcoal-Shard"); got != owner {
				t.Fatalf("delta %d landed on %s, session lives on %s", i, got, owner)
			}
			var dr service.DeltaResponse
			if err := json.Unmarshal(dresp, &dr); err != nil {
				t.Fatal(err)
			}
			if dr.Version != v+1 {
				t.Fatalf("delta %d: version %d, want %d", i, dr.Version, v+1)
			}
			if dr.Result == nil || dr.Result.Vertices != spec.Vertices+i+1 {
				t.Fatalf("delta %d: result %+v", i, dr.Result)
			}
		}

		// Close, also sticky via base_hash.
		cbody, err := json.Marshal(service.DeltaRequest{
			Op: "close", SessionID: created.SessionID, BaseHash: created.BaseHash})
		if err != nil {
			t.Fatal(err)
		}
		status, chdr, cresp := post(t, c.RouterURL+"/v1/coalesce/delta", cbody)
		if status != http.StatusOK {
			t.Fatalf("close: status %d: %s", status, cresp)
		}
		if got := chdr.Get("X-Regcoal-Shard"); got != owner {
			t.Fatalf("close landed on %s, session lives on %s", got, owner)
		}
	}
	if len(shards) < 2 {
		t.Fatalf("all 8 sessions landed on one shard; ring looks degenerate: %v", shards)
	}
}

func TestDeltaSessionErrorsAreStructured4xx(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{})

	// Unknown session against any shard: structured 404 from the worker.
	body, _ := json.Marshal(service.DeltaRequest{
		SessionID: "s-deadbeef", BaseHash: "nope",
		Deltas: []session.Delta{{Op: session.OpAddVertex}}})
	status, _, resp := post(t, c.RouterURL+"/v1/coalesce/delta", body)
	if status != http.StatusNotFound {
		t.Fatalf("unknown session: status %d: %s", status, resp)
	}
	var e service.ErrorResponse
	if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" {
		t.Fatalf("unknown session: unstructured error %q", resp)
	}

	// Malformed body: routed to the fallback shard, worker's own 400.
	status, _, resp = post(t, c.RouterURL+"/v1/coalesce/delta", []byte(`{"op":`))
	if status != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d: %s", status, resp)
	}
	if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" {
		t.Fatalf("malformed body: unstructured error %q", resp)
	}
}

// A stale version through the router is a 409 from the owning shard —
// the optimistic-concurrency contract survives the network hop.
func TestDeltaSessionVersionConflictThroughRouter(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{})

	spec := &service.GraphSpec{Vertices: 4, K: 2,
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}}}
	body, _ := json.Marshal(service.DeltaRequest{Op: "create", Graph: spec})
	status, _, resp := post(t, c.RouterURL+"/v1/coalesce/delta", body)
	if status != http.StatusOK {
		t.Fatalf("create: status %d: %s", status, resp)
	}
	var created service.DeltaResponse
	if err := json.Unmarshal(resp, &created); err != nil {
		t.Fatal(err)
	}
	stale := int64(5)
	dbody, _ := json.Marshal(service.DeltaRequest{
		SessionID: created.SessionID, BaseHash: created.BaseHash,
		Version: &stale,
		Deltas:  []session.Delta{{Op: session.OpAddVertex}}})
	status, _, resp = post(t, c.RouterURL+"/v1/coalesce/delta", dbody)
	if status != http.StatusConflict {
		t.Fatalf("stale version: status %d: %s", status, resp)
	}
	var e service.ErrorResponse
	if err := json.Unmarshal(resp, &e); err != nil || e.Error == "" {
		t.Fatalf("stale version: unstructured error %q", resp)
	}
}
