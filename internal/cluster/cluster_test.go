package cluster_test

// Differential tests for the serving tier's core contract: a multi-node
// cluster — router, sharding, tiered cache, peer fill, batch fan-out —
// answers every request with bytes identical to a single-process
// service. Routing may change where an instance is computed; it must
// never change what the client reads.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"regcoal/internal/cluster"
	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/service"
)

func startCluster(t *testing.T, n int, opts cluster.InProcessOptions) *cluster.InProcess {
	t.Helper()
	c, err := cluster.StartInProcess(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func startSingle(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	s, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func quickInstances(t *testing.T) []*corpus.Instance {
	t.Helper()
	fams, err := corpus.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20060408, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return insts
}

func requestBody(t *testing.T, f *graph.File) []byte {
	t.Helper()
	body, err := json.Marshal(&service.Request{Graph: specFromFileT(f)})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// specFromFileT mirrors the internal-package helper for the _test package.
func specFromFileT(f *graph.File) *service.GraphSpec {
	spec := &service.GraphSpec{Vertices: f.G.N(), K: f.K}
	for _, e := range f.G.Edges() {
		spec.Edges = append(spec.Edges, [2]int{int(e[0]), int(e[1])})
	}
	for _, a := range f.G.Affinities() {
		spec.Moves = append(spec.Moves, service.Move{X: int(a.X), Y: int(a.Y), Weight: a.Weight})
	}
	for v := 0; v < f.G.N(); v++ {
		if c, ok := f.G.Precolored(graph.V(v)); ok {
			spec.Precolored = append(spec.Precolored, service.Pin{V: v, Color: c})
		}
	}
	return spec
}

func relabeledFileT(f *graph.File, perm []int) *graph.File {
	g := graph.New(f.G.N())
	for _, e := range f.G.Edges() {
		g.AddEdge(graph.V(perm[e[0]]), graph.V(perm[e[1]]))
	}
	for _, a := range f.G.Affinities() {
		g.AddAffinity(graph.V(perm[a.X]), graph.V(perm[a.Y]), a.Weight)
	}
	for v := 0; v < f.G.N(); v++ {
		if c, ok := f.G.Precolored(graph.V(v)); ok {
			g.SetPrecolored(graph.V(perm[v]), c)
		}
	}
	return &graph.File{G: g, K: f.K}
}

var allEndpoints = []string{"/v1/coalesce", "/v1/allocate", "/v1/spill"}

// The acceptance criterion: every corpus family through a 3-worker
// cluster — single solves on all three endpoints, relabeled duplicates
// served through the tiered cache, and /v1/batch — answers byte-identical
// to a single-process service.
func TestClusterDifferentialByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("differential test solves the corpus twice per endpoint")
	}
	scfg := service.Config{Workers: 4, QueueCap: 512}
	_, single := startSingle(t, scfg)
	c := startCluster(t, 3, cluster.InProcessOptions{Service: scfg})

	insts := quickInstances(t)
	rng := rand.New(rand.NewSource(11))
	for _, ep := range allEndpoints {
		for _, inst := range insts {
			body := requestBody(t, inst.File)
			wantStatus, _, want := post(t, single.URL+ep, body)
			gotStatus, hdr, got := post(t, c.RouterURL+ep, body)
			if gotStatus != wantStatus {
				t.Fatalf("%s %s: cluster status %d, single %d", ep, inst.Name, gotStatus, wantStatus)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s %s: cluster body differs from single-node:\n%s\n%s", ep, inst.Name, got, want)
			}
			if hdr.Get("X-Regcoal-Shard") == "" {
				t.Fatalf("%s %s: router response missing shard header", ep, inst.Name)
			}

			// A relabeled duplicate is a different request body with a
			// different (but still deterministic) response; the cluster
			// must agree with single-node on it too. For invariant
			// instances this lands on the same shard and exercises the
			// cache across numberings.
			perm := rng.Perm(inst.File.G.N())
			dupBody := requestBody(t, relabeledFileT(inst.File, perm))
			wantStatus, _, want = post(t, single.URL+ep, dupBody)
			gotStatus, _, got = post(t, c.RouterURL+ep, dupBody)
			if gotStatus != wantStatus || !bytes.Equal(got, want) {
				t.Fatalf("%s %s relabeled: cluster (%d) differs from single (%d):\n%s\n%s",
					ep, inst.Name, gotStatus, wantStatus, got, want)
			}
		}
	}

	// Peer cache fill: the same instances posted directly to a worker
	// outside their hash's replica set (replicas already hold the entry
	// via push-on-compute, so only a non-replica exercises the L2
	// lookup). The non-replica fills from an owner's cache (seeded by
	// the routed traffic above) and must still answer byte-identically.
	ring := c.Router.Ring()
	peerFillsBefore := int64(0)
	for _, w := range c.Workers {
		peerFillsBefore += w.Worker.Stats().PeerFills
	}
	for _, inst := range insts {
		body := requestBody(t, inst.File)
		var req service.Request
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatal(err)
		}
		replicas := ring.Replicas(service.RoutingHash(&req, 0), cluster.DefaultReplicas)
		var nonOwner *cluster.InProcessWorker
		for _, w := range c.Workers {
			if !slices.Contains(replicas, w.URL) {
				nonOwner = w
				break
			}
		}
		if nonOwner == nil {
			t.Fatalf("%s: no worker outside replica set %v", inst.Name, replicas)
		}
		wantStatus, _, want := post(t, single.URL+"/v1/coalesce", body)
		gotStatus, _, got := post(t, nonOwner.URL+"/v1/coalesce", body)
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Fatalf("%s via non-owner %s: (%d) differs from single (%d):\n%s\n%s",
				inst.Name, nonOwner.URL, gotStatus, wantStatus, got, want)
		}
	}
	peerFillsAfter := int64(0)
	for _, w := range c.Workers {
		peerFillsAfter += w.Worker.Stats().PeerFills
	}
	if peerFillsAfter <= peerFillsBefore {
		t.Fatalf("no peer fills recorded across the non-owner pass (before %d, after %d)", peerFillsBefore, peerFillsAfter)
	}

	// /v1/batch with every instance, all three kinds, spliced across
	// shards, must be byte-identical to the single process answering the
	// whole batch.
	for _, kind := range []string{"coalesce", "allocate", "spill"} {
		breq := service.BatchSolveRequest{Kind: kind}
		for _, inst := range insts {
			var req service.Request
			if err := json.Unmarshal(requestBody(t, inst.File), &req); err != nil {
				t.Fatal(err)
			}
			breq.Items = append(breq.Items, req)
		}
		body, err := json.Marshal(&breq)
		if err != nil {
			t.Fatal(err)
		}
		wantStatus, _, want := post(t, single.URL+"/v1/batch", body)
		gotStatus, _, got := post(t, c.RouterURL+"/v1/batch", body)
		if wantStatus != http.StatusOK {
			t.Fatalf("batch %s: single-node status %d: %s", kind, wantStatus, want)
		}
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Fatalf("batch %s: cluster (%d) differs from single (%d)", kind, gotStatus, wantStatus)
		}
	}

	// Error paths route to the deterministic fallback shard and must
	// reproduce the single-node error bodies exactly.
	for _, bad := range []string{
		`{"graph":{"vertices":3,"edges":[[0,1]]}}`, // no register count
		`{}`, // missing graph
		`{"graph":{"vertices":2,"edges":[[0,5]],"k":2}}`, // vertex out of range
		`not json`,                    // undecodable
		`{"kind":"bogus","items":[]}`, // sent to /v1/coalesce: unknown field
	} {
		wantStatus, _, want := post(t, single.URL+"/v1/coalesce", []byte(bad))
		gotStatus, _, got := post(t, c.RouterURL+"/v1/coalesce", []byte(bad))
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Fatalf("error body %q: cluster (%d) %s, single (%d) %s", bad, gotStatus, got, wantStatus, want)
		}
	}
	badBatches := []string{
		`{"kind":"bogus","items":[{}]}`,
		`{"kind":"coalesce","items":[]}`,
		`{"unknown_field":1}`,
	}
	for _, bad := range badBatches {
		wantStatus, _, want := post(t, single.URL+"/v1/batch", []byte(bad))
		gotStatus, _, got := post(t, c.RouterURL+"/v1/batch", []byte(bad))
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Fatalf("batch error body %q: cluster (%d) %s, single (%d) %s", bad, gotStatus, got, wantStatus, want)
		}
	}
}

// The singleflight acceptance test: 64 concurrent identical requests
// through the router produce exactly one portfolio race cluster-wide and
// 64 byte-identical responses. The instance is a dense branch-and-bound
// graph whose race runs the full 500ms deadline, so every follower
// arrives while the leader is still computing.
func TestClusterSingleflightCollapses64ConcurrentDuplicates(t *testing.T) {
	c := startCluster(t, 3, cluster.InProcessOptions{
		Service: service.Config{Workers: 4, QueueCap: 256},
	})
	rng := rand.New(rand.NewSource(42))
	g := graph.RandomER(rng, 48, 0.4)
	graph.SprinkleAffinities(rng, g, 14, 100)
	body, err := json.Marshal(&service.Request{
		Graph:      specFromFileT(&graph.File{G: g, K: 6}),
		DeadlineMS: 500,
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 64
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			resp, err := client.Post(c.RouterURL+"/v1/coalesce", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			statuses[i] = resp.StatusCode
			bodies[i] = data
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}

	solves := int64(0)
	collapses := int64(0)
	for _, w := range c.Workers {
		st := w.Service.StatsSnapshot()
		for _, wins := range st.StrategyWins {
			solves += wins
		}
		collapses += st.SingleflightCollapses
	}
	if solves != 1 {
		t.Fatalf("cluster ran %d portfolio races for %d identical requests, want exactly 1", solves, n)
	}
	if collapses == 0 {
		t.Fatal("no singleflight collapses recorded across 64 concurrent duplicates")
	}
}

// Peer fill in isolation: solve on the owner, then ask a non-owner for
// the same instance — it must answer from the owner's cache (tier
// "peer") without computing, byte-identically.
func TestPeerFillServesWithoutRecompute(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{
		Service: service.Config{Workers: 2, QueueCap: 64},
		// R = 1: under the replicated default (R = 2) a 2-worker cluster
		// push-on-computes every entry to both shards, so the "peer" tier
		// this test isolates would never be exercised.
		Worker: cluster.WorkerConfig{Replicas: 1},
		Router: cluster.RouterConfig{Replicas: 1},
	})
	insts := quickInstances(t)
	inst := insts[0] // chordal: WL-discriminated, hash is relabel-invariant
	body := requestBody(t, inst.File)
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	owner := c.Router.Ring().Owner(service.RoutingHash(&req, 0))
	var ownerW, otherW *cluster.InProcessWorker
	for _, w := range c.Workers {
		if w.URL == owner {
			ownerW = w
		} else {
			otherW = w
		}
	}
	if ownerW == nil || otherW == nil {
		t.Fatalf("could not split owner/non-owner from %q", owner)
	}

	status, hdr, want := post(t, ownerW.URL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("owner solve: status %d: %s", status, want)
	}
	if tier := hdr.Get("X-Regcoal-Tier"); tier != "compute" {
		t.Fatalf("owner first solve tier %q, want compute", tier)
	}

	status, hdr, got := post(t, otherW.URL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("non-owner solve: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer-filled body differs:\n%s\n%s", got, want)
	}
	if tier := hdr.Get("X-Regcoal-Tier"); tier != "peer" {
		t.Fatalf("non-owner tier %q, want peer", tier)
	}
	if hit := hdr.Get("X-Regcoal-Cache"); hit != "hit" {
		t.Fatalf("non-owner disposition %q, want hit", hit)
	}
	if fills := otherW.Worker.Stats().PeerFills; fills != 1 {
		t.Fatalf("non-owner recorded %d peer fills, want 1", fills)
	}
	st := otherW.Service.StatsSnapshot()
	for name, wins := range st.StrategyWins {
		if wins > 0 {
			t.Fatalf("non-owner computed (%s won %d races) despite peer fill", name, wins)
		}
	}

	// A relabeled duplicate of the now-seeded instance hits the
	// non-owner's local cache in its own numbering.
	perm := rand.New(rand.NewSource(3)).Perm(inst.File.G.N())
	dupBody := requestBody(t, relabeledFileT(inst.File, perm))
	status, hdr, dup := post(t, otherW.URL+"/v1/coalesce", dupBody)
	if status != http.StatusOK {
		t.Fatalf("relabeled duplicate: status %d: %s", status, dup)
	}
	if disp := hdr.Get("X-Regcoal-Cache"); disp != "hit" {
		t.Fatalf("relabeled duplicate disposition %q, want hit", disp)
	}
	if bytes.Equal(dup, want) {
		t.Fatal("relabeled duplicate answered with the original numbering's body")
	}
}

// Draining a worker flips its /readyz to 503 (liveness stays 200) and
// the router fails its keys over to the next ring node, still answering
// byte-identically.
func TestDrainFailsReadinessAndRouterFailsOver(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{
		Service: service.Config{Workers: 2, QueueCap: 64},
		Router:  cluster.RouterConfig{ReadyTTL: time.Nanosecond}, // probe every request
	})
	insts := quickInstances(t)
	body := requestBody(t, insts[1].File)

	status, hdr, want := post(t, c.RouterURL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, want)
	}
	shard := hdr.Get("X-Regcoal-Shard")
	var drained *cluster.InProcessWorker
	for _, w := range c.Workers {
		if w.URL == shard {
			drained = w
		}
	}
	if drained == nil {
		t.Fatalf("shard header %q matches no worker", shard)
	}
	drained.Service.BeginDrain()

	// Liveness and readiness split: the draining worker is alive but not
	// ready.
	resp, err := http.Get(drained.URL + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/livez of draining worker: %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(drained.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz of draining worker: %d, want 503", resp.StatusCode)
	}

	status, hdr, got := post(t, c.RouterURL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("post-drain status %d: %s", status, got)
	}
	if hdr.Get("X-Regcoal-Shard") == shard {
		t.Fatalf("router still routed to draining shard %s", shard)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failover body differs:\n%s\n%s", got, want)
	}
}

// A full heavy lane answers 429 with backpressure instead of queueing
// more expensive races.
func TestAdmissionHeavyLaneRejectsWhenFull(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 4, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	w, err := cluster.NewWorker(svc, cluster.WorkerConfig{
		Admission: cluster.AdmissionConfig{HeavySlots: 1, HeavyVertices: 1}, // everything is heavy
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(w)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})

	rng := rand.New(rand.NewSource(42))
	g := graph.RandomER(rng, 48, 0.4)
	graph.SprinkleAffinities(rng, g, 14, 100)
	body, err := json.Marshal(&service.Request{
		Graph:      specFromFileT(&graph.File{G: g, K: 6}),
		DeadlineMS: 500,
		NoCache:    true, // force a real compute per request: no cache, no collapse
	})
	if err != nil {
		t.Fatal(err)
	}

	holder := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/coalesce", "application/json", bytes.NewReader(body))
		if err != nil {
			holder <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			holder <- fmt.Errorf("holder status %d", resp.StatusCode)
			return
		}
		holder <- nil
	}()
	time.Sleep(150 * time.Millisecond) // holder is inside its 500ms race

	status, _, got := post(t, ts.URL+"/v1/coalesce", body)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second heavy request: status %d (%s), want 429", status, got)
	}
	var e service.ErrorResponse
	if err := json.Unmarshal(got, &e); err != nil {
		t.Fatal(err)
	}
	if e.Error != "heavy lane full, retry later" {
		t.Fatalf("429 body %q", e.Error)
	}
	if err := <-holder; err != nil {
		t.Fatal(err)
	}
	if rejects := w.Stats().HeavyLaneRejects; rejects != 1 {
		t.Fatalf("heavy lane rejects %d, want 1", rejects)
	}

	// With the lane free again the same request is admitted.
	status, _, got = post(t, ts.URL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("post-release request: status %d: %s", status, got)
	}
}

// The CI smoke topology: router + 2 workers in-process, a corpus slice
// through /v1/batch, byte-identical to single-node. Kept fast enough to
// run under -race in every CI build.
func TestClusterSmokeBatchByteIdentical(t *testing.T) {
	scfg := service.Config{Workers: 2, QueueCap: 128}
	_, single := startSingle(t, scfg)
	c := startCluster(t, 2, cluster.InProcessOptions{Service: scfg})

	insts := quickInstances(t)
	if len(insts) > 8 {
		insts = insts[:8]
	}
	breq := service.BatchSolveRequest{Kind: "coalesce"}
	for _, inst := range insts {
		var req service.Request
		if err := json.Unmarshal(requestBody(t, inst.File), &req); err != nil {
			t.Fatal(err)
		}
		breq.Items = append(breq.Items, req)
	}
	body, err := json.Marshal(&breq)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus, _, want := post(t, single.URL+"/v1/batch", body)
	if wantStatus != http.StatusOK {
		t.Fatalf("single-node batch status %d: %s", wantStatus, want)
	}
	gotStatus, _, got := post(t, c.RouterURL+"/v1/batch", body)
	if gotStatus != http.StatusOK {
		t.Fatalf("cluster batch status %d: %s", gotStatus, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("cluster batch body differs from single-node:\n%s\n%s", got, want)
	}
	var out service.BatchResponse
	if err := json.Unmarshal(got, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != len(insts) {
		t.Fatalf("%d results for %d items", len(out.Results), len(insts))
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Coalesce == nil {
			t.Fatalf("result %d: error %q", i, r.Error)
		}
	}
	// The batch was genuinely sharded: it touched exactly the shards the
	// ring assigns to the items' routing hashes. (With random ports the
	// ring occasionally maps every item to one worker — a legal split —
	// so the expectation is computed, not hard-coded at 2.)
	ring := c.Router.Ring()
	owners := make(map[string]bool, len(breq.Items))
	for i := range breq.Items {
		owners[ring.Owner(service.RoutingHash(&breq.Items[i], 200000))] = true
	}
	if shards := c.Router.Stats().PerShard; len(shards) != len(owners) {
		t.Fatalf("batch touched %d shards, ring expects %d: %v", len(shards), len(owners), shards)
	}
}
