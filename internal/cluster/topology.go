package cluster

// Epoch-versioned cluster membership. The node set is no longer a
// construction-time constant: router and workers each hold a Topology —
// an atomically swappable (epoch, node set, ring) snapshot — and every
// internal RPC (peer fill, cache push, session log, handoff) carries the
// sender's epoch in X-Regcoal-Epoch. A receiver whose epoch differs
// answers a structured 409 carrying its own full view, so the stale side
// (whichever it is) reconciles immediately instead of silently landing
// traffic on the wrong owner.
//
// Updates originate at the router's admin endpoint (POST
// /internal/topology with add/remove/nodes, CAS-guarded by from_epoch)
// and are broadcast as full {epoch, nodes} views to the union of the old
// and new node sets; a worker adopts any view with a strictly higher
// epoch (adoption is idempotent and order-insensitive under the
// monotonic epoch). A worker that restarts with a stale -peers list
// self-heals on its first internal RPC via the 409 exchange.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
)

// EpochHeader carries the sender's topology epoch on internal RPCs.
const EpochHeader = "X-Regcoal-Epoch"

// TopologyView is one immutable snapshot of cluster membership: the
// epoch, the sorted node set, and the consistent-hash ring built over
// it. Views are never mutated after construction; a topology change
// installs a fresh view.
type TopologyView struct {
	Epoch uint64
	Nodes []string
	Ring  *Ring
}

// Topology is the mutable, epoch-versioned membership object. Readers
// take lock-free snapshots via View; writers serialize through mu so
// epochs increase monotonically and CAS semantics hold.
type Topology struct {
	mu     sync.Mutex
	cur    atomic.Pointer[TopologyView]
	vnodes int
}

// NewTopology builds a topology over the initial node set at epoch 1.
func NewTopology(nodes []string, vnodes int) *Topology {
	t := &Topology{vnodes: vnodes}
	ring := NewRing(nodes, vnodes)
	t.cur.Store(&TopologyView{Epoch: 1, Nodes: ring.Nodes(), Ring: ring})
	return t
}

// View returns the current snapshot.
func (t *Topology) View() *TopologyView { return t.cur.Load() }

// Epoch returns the current epoch.
func (t *Topology) Epoch() uint64 { return t.cur.Load().Epoch }

// CAS installs nodes as the new membership iff the current epoch equals
// fromEpoch, returning the new view (epoch fromEpoch+1). A mismatch
// returns the current view and an error — the caller refetches and
// retries or reports the conflict.
func (t *Topology) CAS(fromEpoch uint64, nodes []string) (*TopologyView, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	if cur.Epoch != fromEpoch {
		return cur, fmt.Errorf("topology: CAS from epoch %d, current is %d", fromEpoch, cur.Epoch)
	}
	ring := NewRing(nodes, t.vnodes)
	next := &TopologyView{Epoch: cur.Epoch + 1, Nodes: ring.Nodes(), Ring: ring}
	t.cur.Store(next)
	return next, nil
}

// Adopt installs a broadcast view iff its epoch is strictly higher than
// the current one. It returns the previous and installed views and
// whether anything changed; equal or lower epochs are no-ops (idempotent
// re-delivery, stale broadcast).
func (t *Topology) Adopt(epoch uint64, nodes []string) (old, installed *TopologyView, changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	if epoch <= cur.Epoch {
		return cur, cur, false
	}
	ring := NewRing(nodes, t.vnodes)
	next := &TopologyView{Epoch: epoch, Nodes: ring.Nodes(), Ring: ring}
	t.cur.Store(next)
	return cur, next, true
}

// TopologyWire is the JSON shape of a full topology view: the broadcast
// body of POST /internal/topology on workers, the response of GET
// /internal/topology everywhere, and the payload of a stale-epoch 409.
type TopologyWire struct {
	Epoch uint64   `json:"epoch"`
	Nodes []string `json:"nodes"`
}

// Wire renders the view for transport.
func (v *TopologyView) Wire() TopologyWire {
	return TopologyWire{Epoch: v.Epoch, Nodes: append([]string(nil), v.Nodes...)}
}

// staleEpoch is the structured 409 body an epoch mismatch answers with:
// the error, both epochs, and the receiver's full current view so the
// stale side can reconcile from the rejection alone — the 409 IS the
// ring refetch.
type staleEpoch struct {
	Error    string       `json:"error"`
	Have     uint64       `json:"have"`
	Got      uint64       `json:"got"`
	Topology TopologyWire `json:"topology"`
}

// writeStaleEpoch answers an internal RPC whose epoch disagrees with
// view.
func writeStaleEpoch(rw http.ResponseWriter, got uint64, view *TopologyView) {
	body, err := json.Marshal(staleEpoch{
		Error:    fmt.Sprintf("stale epoch %d, current is %d", got, view.Epoch),
		Have:     view.Epoch,
		Got:      got,
		Topology: view.Wire(),
	})
	if err != nil {
		http.Error(rw, `{"error":"stale epoch"}`, http.StatusConflict)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusConflict)
	rw.Write(body)
}

// parseEpochHeader reads X-Regcoal-Epoch. Absent or malformed headers
// return (0, false): epoch-agnostic senders (older binaries, manual
// curl) are accepted rather than locked out.
func parseEpochHeader(r *http.Request) (uint64, bool) {
	h := r.Header.Get(EpochHeader)
	if h == "" {
		return 0, false
	}
	e, err := strconv.ParseUint(h, 10, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// PostTopologyUpdate announces a membership edit to the admin endpoint
// at base (normally the router): nodes in add join the ring, nodes in
// remove leave it. It is the client side of `serve -join` and the
// drain-initiated leave. The installed view comes back on success; a
// CAS conflict or validation error surfaces as an error carrying the
// response body.
func PostTopologyUpdate(client *http.Client, base string, add, remove []string) (TopologyWire, error) {
	if client == nil {
		client = http.DefaultClient
	}
	return postTopologyUpdate(client, base, topologyUpdate{Add: add, Remove: remove})
}

func postTopologyUpdate(client *http.Client, base string, upd topologyUpdate) (TopologyWire, error) {
	var wire TopologyWire
	payload, err := json.Marshal(upd)
	if err != nil {
		return wire, err
	}
	resp, err := client.Post(base+"/internal/topology", "application/json", bytes.NewReader(payload))
	if err != nil {
		return wire, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return wire, err
	}
	if resp.StatusCode != http.StatusOK {
		return wire, fmt.Errorf("topology update: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		return wire, fmt.Errorf("topology update: decoding response: %w", err)
	}
	return wire, nil
}

// topologyUpdate is the admin wire of POST /internal/topology on the
// router: either a full replacement node set or an add/remove edit of
// the current one, CAS-guarded by from_epoch (0 means "against the
// current epoch, whatever it is" — still serialized, but not protected
// against a concurrent admin racing the read-modify-write).
type topologyUpdate struct {
	FromEpoch uint64   `json:"from_epoch,omitempty"`
	Nodes     []string `json:"nodes,omitempty"`
	Add       []string `json:"add,omitempty"`
	Remove    []string `json:"remove,omitempty"`
}

// applyEdit computes the update's target node set from the current one.
func (u *topologyUpdate) applyEdit(current []string) ([]string, error) {
	if len(u.Nodes) > 0 {
		if len(u.Add) > 0 || len(u.Remove) > 0 {
			return nil, fmt.Errorf("topology update: use either nodes or add/remove, not both")
		}
		return append([]string(nil), u.Nodes...), nil
	}
	if len(u.Add) == 0 && len(u.Remove) == 0 {
		return nil, fmt.Errorf("topology update: empty update (set nodes, add, or remove)")
	}
	drop := make(map[string]bool, len(u.Remove))
	for _, n := range u.Remove {
		drop[n] = true
	}
	out := make([]string, 0, len(current)+len(u.Add))
	for _, n := range current {
		if !drop[n] {
			out = append(out, n)
		}
	}
	for _, n := range u.Add {
		if !drop[n] {
			out = append(out, n)
		}
	}
	return out, nil
}
