package cluster

// Cache handoff and session migration: what makes a topology change
// boring for clients. When a worker adopts a new view it compares the
// old and new replica sets of everything it holds — cache entries by
// their canonical routing hash, session op logs by their base hash —
// and streams whatever gained a new owner to that owner, in the same
// canonical-entry wire format the peer-fill path uses (PUT
// /internal/cache) and the session import wire (POST
// /internal/session/import). The stream is rate-limited (HandoffRate),
// gets one retry round over its failures (resumable: a push that missed
// is re-attempted before the round is declared done), and runs under
// the regcoal_handoff_* counter family. While it streams, the old view
// stays installed as a read fallback (Worker.prev) for HandoffWindow,
// so a request that reaches the new owner before its entry does falls
// back to the old owner instead of re-solving — no cold cache.
//
// Sessions additionally migrate on LRU eviction: the evicted primary
// re-pushes the op log to the hash's current primary (see
// onSessionEvict), so the session survives as rebuildable state wherever
// the ring now points.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"regcoal/internal/service"
	"regcoal/internal/session"
)

// handoffPush is one pending unit of the stream: a cache entry key or a
// session export, destined for one new owner.
type handoffPush struct {
	peer string
	key  string         // cache entry key, when a cache push
	rec  *sessionExport // session export, when a session push
}

// sessionExport pairs a session's export record with its routing hash.
type sessionExport struct {
	baseHash string
	rec      *session.ExportRecord
}

// startHandoff installs the pre-change view as the read fallback and
// streams reassigned state in the background. Called with the old and
// freshly installed views under no locks.
func (w *Worker) startHandoff(old, next *TopologyView) {
	if w.cfg.DisablePeerFill {
		return
	}
	w.prev.Store(old)
	window := w.cfg.HandoffWindow
	if window <= 0 {
		window = 5 * time.Second
	}
	time.AfterFunc(window, func() {
		// Clear only our own fallback: a later reshard's window must
		// not be cut short by this one's timer.
		w.prev.CompareAndSwap(old, nil)
	})
	w.handoffRounds.Add(1)
	w.handoffActive.Add(1)
	go func() {
		defer w.handoffActive.Add(-1)
		w.runHandoff(old, next)
	}()
}

// runHandoff computes and sends this worker's share of the reassigned
// state: every held cache entry and session op log whose new replica
// set contains nodes the old one did not. Failures get one retry round;
// what still fails is counted and abandoned (the read fallback plus
// future peer fills and session rebuilds cover the gap).
func (w *Worker) runHandoff(old, next *TopologyView) {
	r := w.replicaCount()
	var pending []handoffPush
	for _, key := range w.svc.CacheKeys() {
		hash := service.KeyRoutingHash(key)
		for _, peer := range w.movedOwners(old, next, hash, r) {
			pending = append(pending, handoffPush{peer: peer, key: key})
		}
	}
	for _, lg := range w.sessLogs.all() {
		targets := w.movedOwners(old, next, lg.BaseHash, r)
		if len(targets) == 0 {
			continue
		}
		rec := w.exportFromLog(lg)
		if rec == nil {
			continue
		}
		for _, peer := range targets {
			pending = append(pending, handoffPush{peer: peer, rec: &sessionExport{baseHash: lg.BaseHash, rec: rec}})
		}
	}

	var interval time.Duration
	if w.cfg.HandoffRate > 0 {
		interval = time.Duration(float64(time.Second) / w.cfg.HandoffRate)
	}
	retry := w.streamHandoff(pending, interval)
	retry = w.streamHandoff(retry, interval)
	w.handoffErrors.Add(int64(len(retry)))
}

// movedOwners returns the members of hash's new replica set that were
// not in its old one — the nodes owed a copy — provided this worker was
// an old owner (otherwise someone else holds the authoritative copy and
// will stream it; pushing from every holder would square the traffic).
func (w *Worker) movedOwners(old, next *TopologyView, hash string, replicas int) []string {
	wasOwner := false
	oldSet := map[string]bool{}
	for _, n := range old.Ring.Replicas(hash, replicas) {
		oldSet[n] = true
		if n == w.cfg.Self {
			wasOwner = true
		}
	}
	if !wasOwner {
		return nil
	}
	var out []string
	for _, n := range next.Ring.Replicas(hash, replicas) {
		if !oldSet[n] && n != w.cfg.Self {
			out = append(out, n)
		}
	}
	return out
}

// streamHandoff sends each pending push, pacing by interval, returning
// the pushes that failed (the caller's retry round).
func (w *Worker) streamHandoff(pending []handoffPush, interval time.Duration) []handoffPush {
	var failed []handoffPush
	for i, p := range pending {
		if interval > 0 && i > 0 {
			time.Sleep(interval)
		}
		var err error
		if p.rec != nil {
			err = w.pushSessionExport(p.peer, p.rec.rec)
			if err == nil {
				w.handoffSessions.Add(1)
			}
		} else {
			err = w.pushHandoffEntry(p.peer, p.key)
		}
		if err != nil {
			failed = append(failed, p)
		}
	}
	return failed
}

// pushHandoffEntry sends one cache entry to one new owner over the
// peer-fill wire (idempotent PUT).
func (w *Worker) pushHandoffEntry(peer, key string) error {
	data, ok := w.svc.CachePeek(key)
	if !ok {
		return nil // evicted since enumeration; nothing to move
	}
	resp, err := w.doEpochRequest(peer, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPut, peer+"/internal/cache?key="+url.QueryEscape(key), bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("handoff push %s to %s: status %d", key, peer, resp.StatusCode)
	}
	w.handoffEntries.Add(1)
	w.handoffBytes.Add(int64(len(data)))
	return nil
}

// exportFromLog builds a migration record from a replicated op log. The
// log is the source of truth (the session may or may not be live here);
// its version is by construction the number of applied delta bodies.
func (w *Worker) exportFromLog(lg *sessionLog) *session.ExportRecord {
	if lg == nil || len(lg.Create) == 0 {
		return nil
	}
	rec := &session.ExportRecord{
		SessionID: lg.ID,
		BaseHash:  lg.BaseHash,
		Version:   int64(len(lg.Deltas)),
		Create:    append(json.RawMessage(nil), lg.Create...),
		Deltas:    make([]json.RawMessage, len(lg.Deltas)),
	}
	for i, d := range lg.Deltas {
		rec.Deltas[i] = append(json.RawMessage(nil), d...)
	}
	return rec
}

// pushSessionExport delivers one session's export record to peer. A
// non-stale 409 (the session is already live there) is success: the
// state this push exists to preserve is already preserved.
func (w *Worker) pushSessionExport(peer string, rec *session.ExportRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	resp, err := w.doEpochRequest(peer, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, peer+"/internal/session/import", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent, http.StatusOK, http.StatusConflict:
		return nil
	default:
		return fmt.Errorf("session export %s to %s: status %d", rec.SessionID, peer, resp.StatusCode)
	}
}

// onSessionEvict runs (via the store's evict hook) when LRU pressure
// drops a live session: its op log is re-pushed to the hash's current
// replica set so the session stays rebuildable at the same id even if
// a reshard moved it since creation. Asynchronous — eviction happens
// on a client request's critical path.
func (w *Worker) onSessionEvict(id string) {
	if w.topo == nil || w.cfg.DisablePeerFill {
		return
	}
	lg := w.sessLogs.get(id)
	if lg == nil || lg.BaseHash == "" {
		return
	}
	rec := w.exportFromLog(lg)
	if rec == nil {
		return
	}
	view := w.topo.View()
	go func() {
		for _, peer := range view.Ring.Replicas(lg.BaseHash, w.replicaCount()) {
			if peer == w.cfg.Self {
				continue
			}
			if err := w.pushSessionExport(peer, rec); err != nil {
				w.handoffErrors.Add(1)
				continue
			}
			w.handoffSessions.Add(1)
		}
	}()
}

// handleSessionImport is the migration wire: a peer delivers a full
// session export record. The record is validated structurally (a
// truncated or duplicated op log fails the version arithmetic with a
// 400 — never a panic, never a 5xx), stored as this worker's replicated
// log, and eagerly replayed so the session is live before its first
// client request arrives. An id already live answers the replay's 409,
// which the sender treats as success.
func (w *Worker) handleSessionImport(rw http.ResponseWriter, r *http.Request) {
	if w.topo == nil {
		w.writeError(rw, http.StatusNotFound, "not clustered")
		return
	}
	if r.Method != http.MethodPost {
		w.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !w.checkEpoch(rw, r) {
		return
	}
	var rec session.ExportRecord
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, w.svc.Config().MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		w.importFailures.Add(1)
		w.writeError(rw, http.StatusBadRequest, fmt.Sprintf("decoding import: %v", err))
		return
	}
	if err := rec.Validate(); err != nil {
		w.importFailures.Add(1)
		w.writeError(rw, importStatus(err), err.Error())
		return
	}
	// Record the log first: even if replay fails (e.g. id already live),
	// this worker can now rebuild or re-migrate the session later.
	w.sessLogs.upsertCreate(rec.SessionID, rec.BaseHash, rec.Create)
	for _, d := range rec.Deltas {
		w.sessLogs.appendDelta(rec.SessionID, d)
	}
	if err := w.svc.ImportSession(&rec); err != nil {
		status := importStatus(err)
		if status == http.StatusConflict {
			// Already live: idempotent re-delivery, nothing to do.
			rw.WriteHeader(http.StatusConflict)
			return
		}
		w.importFailures.Add(1)
		w.writeError(rw, status, err.Error())
		return
	}
	w.sessionImports.Add(1)
	rw.WriteHeader(http.StatusNoContent)
}

// importStatus lowers an import error to its HTTP status. Session-layer
// ClientErrors and service httpErrors keep theirs; anything else — a
// replay decode failure deep in a malformed record — is the sender's
// fault, 400. An import never 5xxes.
func importStatus(err error) int {
	var ce *session.ClientError
	if errors.As(err, &ce) {
		return ce.Status
	}
	if s := service.ErrorStatus(err); s < http.StatusInternalServerError {
		return s
	}
	return http.StatusBadRequest
}
