package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/service"
)

func TestRingDeterministicAcrossNodeOrder(t *testing.T) {
	nodes := []string{"http://c:1", "http://a:1", "http://b:1"}
	shuffled := []string{"http://b:1", "http://c:1", "http://a:1"}
	r1 := NewRing(nodes, 64)
	r2 := NewRing(shuffled, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %q differs across node order: %q vs %q", key, r1.Owner(key), r2.Owner(key))
		}
		seq := r1.Sequence(key)
		if len(seq) != 3 {
			t.Fatalf("sequence of %q has %d nodes, want 3", key, len(seq))
		}
		if seq[0] != r1.Owner(key) {
			t.Fatalf("sequence of %q starts at %q, owner is %q", key, seq[0], r1.Owner(key))
		}
		seen := map[string]bool{}
		for _, n := range seq {
			if seen[n] {
				t.Fatalf("sequence of %q repeats %q", key, n)
			}
			seen[n] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(nodes, 0) // default vnodes
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("hash-%d", i))]++
	}
	for _, n := range nodes {
		if counts[n] < keys/10 {
			t.Fatalf("node %s owns only %d/%d keys — ring badly imbalanced: %v", n, counts[n], keys, counts)
		}
	}
}

func TestRingFallbackKeyDeterministic(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:1"}, 64)
	owner := r.Owner("")
	if owner == "" {
		t.Fatal("empty-key owner is empty on a non-empty ring")
	}
	for i := 0; i < 5; i++ {
		if r.Owner("") != owner {
			t.Fatal("fallback owner not stable")
		}
	}
}

// relabeledFile applies a vertex permutation to an instance: the same
// abstract graph under different numbering, as a client resubmitting an
// instance it renamed would send it.
func relabeledFile(f *graph.File, perm []int) *graph.File {
	g := graph.New(f.G.N())
	for _, e := range f.G.Edges() {
		g.AddEdge(graph.V(perm[e[0]]), graph.V(perm[e[1]]))
	}
	for _, a := range f.G.Affinities() {
		g.AddAffinity(graph.V(perm[a.X]), graph.V(perm[a.Y]), a.Weight)
	}
	for v := 0; v < f.G.N(); v++ {
		if c, ok := f.G.Precolored(graph.V(v)); ok {
			g.SetPrecolored(graph.V(perm[v]), c)
		}
	}
	return &graph.File{G: g, K: f.K}
}

// specFromFile converts an instance to a native request spec.
func specFromFile(f *graph.File) *service.GraphSpec {
	spec := &service.GraphSpec{Vertices: f.G.N(), K: f.K}
	for _, e := range f.G.Edges() {
		spec.Edges = append(spec.Edges, [2]int{int(e[0]), int(e[1])})
	}
	for _, a := range f.G.Affinities() {
		spec.Moves = append(spec.Moves, service.Move{X: int(a.X), Y: int(a.Y), Weight: a.Weight})
	}
	for v := 0; v < f.G.N(); v++ {
		if c, ok := f.G.Precolored(graph.V(v)); ok {
			spec.Precolored = append(spec.Precolored, service.Pin{V: v, Color: c})
		}
	}
	return spec
}

// Every corpus family's relabeled duplicates must route to the same
// shard: the routing key is the canonical graph hash, which is invariant
// under renumbering whenever Weisfeiler–Leman refinement discriminates
// the vertices (all irregular families). The permutation family is the
// documented exception — its graphs are exactly the symmetric instances
// WL cannot separate (see the internal/graph canon.go soundness comment),
// so its duplicates may land on different shards, costing a cache miss
// but never a wrong answer. This test pins both behaviors.
func TestRelabeledDuplicatesRouteToSameShard(t *testing.T) {
	fams, err := corpus.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20060408, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing([]string{"http://w0:1", "http://w1:1", "http://w2:1"}, 0)
	rng := rand.New(rand.NewSource(7))
	invariantFamilies := map[string]bool{}
	for _, inst := range insts {
		if inst.Family == "permutation" {
			continue
		}
		req := &service.Request{Graph: specFromFile(inst.File)}
		hash := service.RoutingHash(req, 0)
		if hash == "" {
			t.Fatalf("%s: no routing hash", inst.Name)
		}
		owner := ring.Owner(hash)
		for trial := 0; trial < 3; trial++ {
			perm := rng.Perm(inst.File.G.N())
			dup := &service.Request{Graph: specFromFile(relabeledFile(inst.File, perm))}
			dupHash := service.RoutingHash(dup, 0)
			if dupHash != hash {
				t.Fatalf("%s/%s: relabeled duplicate hashes %s, original %s", inst.Family, inst.Name, dupHash, hash)
			}
			if got := ring.Owner(dupHash); got != owner {
				t.Fatalf("%s/%s: relabeled duplicate routed to %s, original to %s", inst.Family, inst.Name, got, owner)
			}
		}
		invariantFamilies[inst.Family] = true
	}
	if len(invariantFamilies) != len(fams)-1 {
		t.Fatalf("covered %d families, want %d (all but permutation)", len(invariantFamilies), len(fams)-1)
	}
}
