package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regcoal/internal/obs"
	"regcoal/internal/service"
)

// setTraceHeader stamps a peer cache request with the originating
// request's trace ID, so one ID threads router → worker → peer hops.
func setTraceHeader(req *http.Request, tr *obs.Trace) {
	if tr != nil && !tr.ID.IsZero() {
		req.Header.Set(service.TraceIDHeader, tr.ID.String())
	}
}

// Worker is one shard of the serving tier: a service.Server wrapped with
// the cluster's tiered cache, admission lanes, and peer-fill protocol.
// Its solve endpoints behave byte-identically to the plain service — same
// decode rules, same error messages, same deterministic bodies — with
// three additions:
//
//   - Tiered cache: on a local (L1) miss whose canonical hash is owned by
//     a different shard, the worker first asks the owner's cache over
//     GET /internal/cache (L2) and seeds its own cache with the entry,
//     turning a cluster-wide duplicate into a hit instead of a re-solve.
//     Entries travel in canonical vertex space (service wire format), so
//     a relabeled duplicate filled from a peer still renders in its own
//     numbering.
//   - Admission lanes: misses are classified fast/heavy by size class and
//     admitted through bounded lanes; a full lane answers 429.
//   - Push-on-compute: an entry computed on any shard is pushed to every
//     member of its hash's replica set (PUT /internal/cache), so each of
//     the R owners accumulates the cluster's working set no matter where
//     traffic lands — read-your-writes holds on any replica.
//   - Session replication: successful /v1/coalesce/delta ops are logged
//     and pushed to the replica set of the session's base hash, so a
//     secondary can rebuild a primary's session by deterministic replay
//     (see replication.go).
type Worker struct {
	svc    *service.Server
	cfg    WorkerConfig
	topo   *Topology // nil when Self is empty (single-node behavior)
	adm    *Admission
	client *http.Client
	mux    *http.ServeMux

	// prev holds the pre-reshard view during the bounded handoff
	// window: reads that miss the new owners fall back to the old ones,
	// so no request observes a cold cache while entries stream over.
	prev atomic.Pointer[TopologyView]

	sessLogs *sessionLogs

	lagMu   sync.Mutex
	replLag map[string]*atomic.Int64 // per-peer un-acked log pushes; grown lazily

	peerFills       atomic.Int64 // local misses answered from a peer's cache
	peerMisses      atomic.Int64 // peer lookups that found nothing
	peerErrors      atomic.Int64 // peer lookups/pushes that failed
	peerPushes      atomic.Int64 // computed entries pushed to replica owners
	replPushes      atomic.Int64 // session log records replicated to peers
	replFailures    atomic.Int64 // ...that failed
	rebuilds        atomic.Int64 // sessions rebuilt from a replicated log
	rebuildFailures atomic.Int64 // ...that failed to replay
	laneRejects     [2]atomic.Int64

	epochRejects    atomic.Int64 // internal RPCs rejected 409 for a stale epoch
	epochAdoptions  atomic.Int64 // topology views adopted (broadcast or 409 exchange)
	handoffEntries  atomic.Int64 // cache entries streamed to new owners
	handoffBytes    atomic.Int64 // ...their serialized size
	handoffSessions atomic.Int64 // sessions exported to new primaries
	handoffErrors   atomic.Int64 // handoff pushes that failed after retry
	handoffRounds   atomic.Int64 // topology changes that ran a handoff
	handoffActive   atomic.Int64 // handoffs currently streaming (gauge)
	sessionImports  atomic.Int64 // sessions imported (made live) via migration
	importFailures  atomic.Int64 // import records rejected
}

// WorkerConfig parameterizes a Worker. Self and Peers use the same base
// URLs the router's config does.
type WorkerConfig struct {
	// Self is this worker's base URL as it appears in Peers (and in the
	// router's worker list). Empty disables the tiered cache (single-node
	// behavior).
	Self string
	// Peers lists every worker's base URL, including Self.
	Peers []string
	// VNodes is the ring's virtual-node count (default DefaultVNodes).
	// Must match the router's.
	VNodes int
	// Admission parameterizes the fast/heavy lanes.
	Admission AdmissionConfig
	// Client performs peer cache traffic (default 2s timeout).
	Client *http.Client
	// DisablePeerFill turns off L2 lookups and pushes while keeping the
	// ring (for experiments isolating admission from the tiered cache).
	DisablePeerFill bool
	// Replicas is the replica-set size R each hash range is owned by
	// (default DefaultReplicas, capped by the worker count). Must match
	// the router's. R = 1 is the pre-replication single-owner behavior.
	Replicas int
	// HandoffRate bounds the handoff stream to this many cache entries
	// per second per topology change (0 = unlimited). Resharding trades
	// warm caches for network burst; the rate keeps the burst bounded.
	HandoffRate float64
	// HandoffWindow is how long after adopting a new topology the old
	// view remains a read fallback: a miss on the new owners retries the
	// old ones while entries are still streaming (default 5s).
	HandoffWindow time.Duration
}

// NewWorker wraps svc as a cluster shard.
func NewWorker(svc *service.Server, cfg WorkerConfig) (*Worker, error) {
	if cfg.Self != "" {
		found := false
		for _, p := range cfg.Peers {
			if p == cfg.Self {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: self %q not in peer list %v", cfg.Self, cfg.Peers)
		}
	}
	w := &Worker{
		svc:      svc,
		cfg:      cfg,
		adm:      NewAdmission(cfg.Admission),
		client:   cfg.Client,
		mux:      http.NewServeMux(),
		sessLogs: newSessionLogs(svc.Config().MaxSessions),
		replLag:  make(map[string]*atomic.Int64, len(cfg.Peers)),
	}
	if cfg.Self != "" && len(cfg.Peers) > 0 {
		w.topo = NewTopology(cfg.Peers, cfg.VNodes)
		// Prefill the lag gauges for the initial peer set so the metrics
		// family is present from the first scrape; peers that join later
		// grow the map through lagFor.
		for _, p := range cfg.Peers {
			if p != cfg.Self {
				w.replLag[p] = &atomic.Int64{}
			}
		}
		// LRU eviction is a migration trigger: an evicted session's op
		// log is re-pushed so the session survives as rebuildable state
		// on its current replica set even after a reshard moved it.
		svc.Sessions().SetEvictHook(w.onSessionEvict)
	}
	if w.client == nil {
		w.client = &http.Client{Timeout: 2 * time.Second}
	}
	w.mux.HandleFunc("/v1/coalesce", w.handleSolve(service.KindCoalesce))
	w.mux.HandleFunc("/v1/allocate", w.handleSolve(service.KindAllocate))
	w.mux.HandleFunc("/v1/spill", w.handleSolve(service.KindSpill))
	w.mux.HandleFunc("/v1/coalesce/delta", w.handleDelta)
	w.mux.HandleFunc("/v1/batch", w.handleBatch)
	w.mux.HandleFunc("/internal/cache", w.handleInternalCache)
	w.mux.HandleFunc("/internal/session/log", w.handleInternalSessionLog)
	w.mux.HandleFunc("/internal/session/import", w.handleSessionImport)
	w.mux.HandleFunc("/internal/topology", w.handleInternalTopology)
	w.mux.HandleFunc("/metrics", w.handleMetrics)
	w.mux.HandleFunc("/stats", w.handleStats)
	// Liveness, readiness, and anything else stay the service's.
	w.mux.Handle("/", svc.Handler())
	return w, nil
}

// lagFor returns (creating if needed) peer's replica-lag gauge. The map
// grows as topology changes introduce peers; entries are never removed,
// so a departed peer's final lag stays readable.
func (w *Worker) lagFor(peer string) *atomic.Int64 {
	w.lagMu.Lock()
	defer w.lagMu.Unlock()
	l, ok := w.replLag[peer]
	if !ok {
		l = &atomic.Int64{}
		w.replLag[peer] = l
	}
	return l
}

// Topology exposes the worker's membership object (nil when not
// clustered).
func (w *Worker) Topology() *Topology { return w.topo }

// replicaCount is the effective replica-set size.
func (w *Worker) replicaCount() int {
	if w.cfg.Replicas > 0 {
		return w.cfg.Replicas
	}
	return DefaultReplicas
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

// Service exposes the wrapped server (tests, embedding).
func (w *Worker) Service() *service.Server { return w.svc }

// handleSolve mirrors the service's solve handler — same metrics, decode
// rules, and bodies — inserting peer fill and admission between Prepare
// and SolvePrepared.
func (w *Worker) handleSolve(kind service.Kind) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.writeError(rw, http.StatusMethodNotAllowed, "POST required")
			return
		}
		m := w.svc.Metrics()
		switch kind {
		case service.KindCoalesce:
			m.CoalesceRequests.Add(1)
		case service.KindAllocate:
			m.AllocateRequests.Add(1)
		case service.KindSpill:
			m.SpillRequests.Add(1)
		}
		m.InFlight.Add(1)
		defer m.InFlight.Add(-1)

		// The router minted (or adopted) the trace ID and forwarded it in
		// X-Regcoal-Trace-Id; StartTrace adopts it, so one ID names the
		// request across router, worker, and peer-fill hops.
		tr := w.svc.StartTrace(service.EndpointOf(kind), r)
		defer w.svc.FinishTrace(tr)
		rw.Header().Set(service.TraceIDHeader, tr.ID.String())
		fail := func(status int, msg string) {
			tr.Status = status
			w.writeError(rw, status, msg)
		}

		tr.BeginPhase(obs.PhaseDecode)
		var req service.Request
		body := http.MaxBytesReader(rw, r.Body, w.svc.Config().MaxBodyBytes)
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			m.BadRequests.Add(1)
			fail(http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
			return
		}

		if len(req.Batch) > 0 {
			if req.Graph != nil {
				m.BadRequests.Add(1)
				fail(http.StatusBadRequest, "use either graph or batch, not both")
				return
			}
			if len(req.Batch) > w.svc.Config().MaxBatch {
				m.BadRequests.Add(1)
				fail(http.StatusBadRequest,
					fmt.Sprintf("batch carries %d graphs, limit %d", len(req.Batch), w.svc.Config().MaxBatch))
				return
			}
			tr.EndPhase()
			resp := w.runBatch(kind, req.Batch)
			tr.BeginPhase(obs.PhaseEncode)
			data, err := json.Marshal(resp)
			tr.EndPhase()
			if err != nil {
				w.svc.Metrics().Errors.Add(1)
				tr.Status = http.StatusInternalServerError
				http.Error(rw, `{"error":"encoding response"}`, http.StatusInternalServerError)
				return
			}
			tr.Status = http.StatusOK
			w.writeRaw(rw, http.StatusOK, data)
			return
		}
		p, err := w.svc.PrepareTraced(kind, &req, tr)
		if err != nil {
			fail(service.ErrorStatus(err), err.Error())
			return
		}
		respBody, disposition, tier, err := w.solveClustered(p, tr)
		if err != nil {
			fail(errorStatus(err), err.Error())
			return
		}
		tr.Cache = disposition
		tr.Status = http.StatusOK
		rw.Header().Set("X-Regcoal-Cache", disposition)
		rw.Header().Set("X-Regcoal-Tier", tier)
		if h := obs.BuildPhasesHeader(tr); h != "" {
			rw.Header().Set(service.PhasesHeader, h)
		}
		if service.TraceWanted(r) {
			tr.DurNS = tr.Since()
			respBody = obs.SpliceTraceJSON(respBody, tr)
		}
		w.writeRaw(rw, http.StatusOK, respBody)
	}
}

// solveClustered answers a prepared request through the tiered cache and
// admission lanes. tier reports where the answer came from: "local"
// (this shard's cache), "peer" (filled from the owner's cache), or
// "compute". tr (nil ok) records the peer lookup as its own phase.
func (w *Worker) solveClustered(p *service.Prepared, tr *obs.Trace) (body []byte, disposition, tier string, err error) {
	tr.BeginPhase(obs.PhasePeer)
	seeded := w.peerFill(p, tr)
	tr.EndPhase()
	if !p.NoCache() && (w.svc.CacheContains(p.Key()) || w.svc.FlightInProgress(p.Key())) {
		// Cached or about to collapse onto an in-flight race: either way
		// this request costs no compute, so it bypasses the admission
		// lanes. (If the flight completes between the check and the
		// solve, the request computes without a slot — rare and benign.)
		body, disposition, err = w.svc.SolvePreparedTraced(p, tr)
		if err != nil {
			return nil, "", "", err
		}
		switch {
		case disposition != "hit":
			tier = "compute"
		case seeded:
			tier = "peer"
		default:
			tier = "local"
		}
		return body, disposition, tier, nil
	}
	lane := w.adm.Classify(p.Vertices(), p.Density())
	if !w.adm.TryAcquire(lane) {
		w.laneRejects[lane].Add(1)
		w.svc.Metrics().Rejected.Add(1)
		return nil, "", "", &laneFullError{lane: lane}
	}
	defer w.adm.Release(lane)
	body, disposition, err = w.svc.SolvePreparedTraced(p, tr)
	if err != nil {
		return nil, "", "", err
	}
	w.pushToOwners(p, disposition, tr)
	return body, disposition, "compute", nil
}

// laneFullError is the admission 429.
type laneFullError struct{ lane Lane }

func (e *laneFullError) Error() string { return e.lane.String() + " lane full, retry later" }

// errorStatus maps worker-level errors (admission) and service solve
// errors to their HTTP status.
func errorStatus(err error) int {
	var lf *laneFullError
	if errors.As(err, &lf) {
		return http.StatusTooManyRequests
	}
	return service.ErrorStatus(err)
}

// solveBatchEntry is the per-item path of both batch shapes: the
// service's entry solve with the tiered cache and push in front.
// Admission is not applied per item — the batch fan-out is already
// bounded by the pool queue, whose saturation surfaces per entry.
func (w *Worker) solveBatchEntry(kind service.Kind, sub *service.Request) service.BatchEntry {
	if len(sub.Batch) > 0 {
		return service.BatchEntry{Error: "batch elements must not nest batches"}
	}
	p, err := w.svc.Prepare(kind, sub)
	if err != nil {
		return service.BatchEntry{Error: err.Error()}
	}
	w.peerFill(p, nil)
	e, disposition := w.svc.SolveBatchEntry(p)
	if e.Error == "" {
		w.pushToOwners(p, disposition, nil)
	}
	return e
}

// runBatch mirrors service.Server.RunBatch — same bounded fan-out, same
// counters — routed through the worker's per-item path.
func (w *Worker) runBatch(kind service.Kind, items []service.Request) *service.BatchResponse {
	w.svc.Metrics().BatchGraphs.Add(int64(len(items)))
	resp := &service.BatchResponse{Results: make([]service.BatchEntry, len(items))}
	fanout := w.svc.Config().Workers * 2
	if fanout > len(items) {
		fanout = len(items)
	}
	idxCh := make(chan int)
	done := make(chan struct{})
	for g := 0; g < fanout; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idxCh {
				resp.Results[i] = w.solveBatchEntry(kind, &items[i])
			}
		}()
	}
	for i := range items {
		idxCh <- i
	}
	close(idxCh)
	for g := 0; g < fanout; g++ {
		<-done
	}
	return resp
}

// handleBatch mirrors the service's /v1/batch — identical validation and
// bodies — through the worker's per-item path.
func (w *Worker) handleBatch(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	m := w.svc.Metrics()
	m.BatchRequests.Add(1)
	m.InFlight.Add(1)
	defer m.InFlight.Add(-1)

	var req service.BatchSolveRequest
	body := http.MaxBytesReader(rw, r.Body, w.svc.Config().MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		m.BadRequests.Add(1)
		w.writeError(rw, http.StatusBadRequest, fmt.Sprintf("decoding batch request: %v", err))
		return
	}
	kind, err := service.ParseKind(req.Kind)
	if err != nil {
		m.BadRequests.Add(1)
		w.writeError(rw, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Items) == 0 {
		m.BadRequests.Add(1)
		w.writeError(rw, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Items) > w.svc.Config().MaxBatch {
		m.BadRequests.Add(1)
		w.writeError(rw, http.StatusBadRequest,
			fmt.Sprintf("batch carries %d graphs, limit %d", len(req.Items), w.svc.Config().MaxBatch))
		return
	}
	w.writeJSON(rw, http.StatusOK, w.runBatch(kind, req.Items))
}

// peerFill consults the replica owners' caches for a key missing
// locally, in replica order, seeding the local cache from the first
// hit. Returns whether the local cache was seeded. During a handoff
// window the previous view's owners are consulted after the current
// ones: an entry whose range just moved may not have streamed to its
// new owner yet, but the old owner still holds it — reads fall back
// old-owner→new-owner, so a reshard never exposes a cold cache. The
// request's trace ID (when tr is non-nil) rides each lookup so the hops
// are attributable to their cluster request.
func (w *Worker) peerFill(p *service.Prepared, tr *obs.Trace) bool {
	if w.topo == nil || w.cfg.DisablePeerFill || p.NoCache() {
		return false
	}
	if w.svc.CacheContains(p.Key()) {
		return false
	}
	tried := map[string]bool{w.cfg.Self: true}
	owners := w.topo.View().Ring.Replicas(p.Hash(), w.replicaCount())
	if prev := w.prev.Load(); prev != nil {
		owners = append(append([]string(nil), owners...), prev.Ring.Replicas(p.Hash(), w.replicaCount())...)
	}
	for _, owner := range owners {
		if tried[owner] {
			continue
		}
		tried[owner] = true
		if w.peerFillFrom(owner, p, tr) {
			return true
		}
	}
	return false
}

// peerFillFrom asks one replica owner for the entry.
func (w *Worker) peerFillFrom(owner string, p *service.Prepared, tr *obs.Trace) bool {
	resp, err := w.doEpochRequest(owner, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodGet, owner+"/internal/cache?key="+url.QueryEscape(p.Key()), nil)
		if err == nil {
			setTraceHeader(req, tr)
		}
		return req, err
	})
	if err != nil {
		w.peerErrors.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		w.peerMisses.Add(1)
		io.Copy(io.Discard, resp.Body)
		return false
	}
	if resp.StatusCode != http.StatusOK {
		w.peerErrors.Add(1)
		io.Copy(io.Discard, resp.Body)
		return false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		w.peerErrors.Add(1)
		return false
	}
	if err := w.svc.CacheSeed(p.Key(), data); err != nil {
		w.peerErrors.Add(1)
		return false
	}
	w.peerFills.Add(1)
	return true
}

// pushToOwners sends a freshly computed entry to every member of its
// hash's replica set, so each of the R owners accumulates the cluster
// working set no matter which worker the traffic hit — and a later read
// answered by any replica sees the write (read-your-writes).
// Synchronous and best-effort: a failed push costs a future peer-fill
// miss, nothing else.
func (w *Worker) pushToOwners(p *service.Prepared, disposition string, tr *obs.Trace) {
	if w.topo == nil || w.cfg.DisablePeerFill || p.NoCache() || disposition != "miss" {
		return
	}
	data, ok := w.svc.CachePeek(p.Key())
	if !ok {
		return
	}
	for _, owner := range w.topo.View().Ring.Replicas(p.Hash(), w.replicaCount()) {
		if owner == w.cfg.Self {
			continue
		}
		resp, err := w.doEpochRequest(owner, func() (*http.Request, error) {
			req, err := http.NewRequest(http.MethodPut, owner+"/internal/cache?key="+url.QueryEscape(p.Key()), bytes.NewReader(data))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			setTraceHeader(req, tr)
			return req, nil
		})
		if err != nil {
			w.peerErrors.Add(1)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			w.peerErrors.Add(1)
			continue
		}
		w.peerPushes.Add(1)
	}
}

// handleInternalCache is the peer-fill wire: GET returns the serialized
// canonical-space entry for ?key (404 when absent), PUT installs one.
func (w *Worker) handleInternalCache(rw http.ResponseWriter, r *http.Request) {
	if !w.checkEpoch(rw, r) {
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		w.writeError(rw, http.StatusBadRequest, "missing key")
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, ok := w.svc.CachePeek(key)
		if !ok {
			w.writeError(rw, http.StatusNotFound, "not cached")
			return
		}
		w.writeRaw(rw, http.StatusOK, data)
	case http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
		if err != nil {
			w.writeError(rw, http.StatusBadRequest, "reading body")
			return
		}
		if err := w.svc.CacheSeed(key, data); err != nil {
			w.writeError(rw, http.StatusBadRequest, err.Error())
			return
		}
		rw.WriteHeader(http.StatusNoContent)
	default:
		w.writeError(rw, http.StatusMethodNotAllowed, "GET or PUT required")
	}
}

// ClusterStats is the worker's shard-level counter section, nested under
// "cluster" in its /stats body.
type ClusterStats struct {
	Self                string           `json:"self,omitempty"`
	Peers               int              `json:"peers"`
	Replicas            int              `json:"replicas"`
	PeerFills           int64            `json:"peer_fills"`
	PeerMisses          int64            `json:"peer_misses"`
	PeerPushes          int64            `json:"peer_pushes"`
	PeerErrors          int64            `json:"peer_errors"`
	SessionReplPushes   int64            `json:"session_repl_pushes"`
	SessionReplFailures int64            `json:"session_repl_failures"`
	SessionRebuilds     int64            `json:"session_rebuilds"`
	SessionRebuildFails int64            `json:"session_rebuild_failures"`
	SessionLogs         int              `json:"session_logs"`
	SessionReplicaLag   map[string]int64 `json:"session_replica_lag,omitempty"`
	FastLaneRejects     int64            `json:"fast_lane_rejects"`
	HeavyLaneRejects    int64            `json:"heavy_lane_rejects"`
	FastLaneDepth       int              `json:"fast_lane_depth"`
	HeavyLaneDepth      int              `json:"heavy_lane_depth"`
	Epoch               uint64           `json:"epoch,omitempty"`
	EpochRejects        int64            `json:"epoch_rejects"`
	EpochAdoptions      int64            `json:"epoch_adoptions"`
	HandoffEntries      int64            `json:"handoff_entries"`
	HandoffBytes        int64            `json:"handoff_bytes"`
	HandoffSessions     int64            `json:"handoff_sessions"`
	HandoffErrors       int64            `json:"handoff_errors"`
	HandoffRounds       int64            `json:"handoff_rounds"`
	HandoffActive       int64            `json:"handoff_active"`
	SessionImports      int64            `json:"session_imports"`
	SessionImportFails  int64            `json:"session_import_failures"`
}

// Stats returns the shard-level counters.
func (w *Worker) Stats() ClusterStats {
	var lag map[string]int64
	w.lagMu.Lock()
	if len(w.replLag) > 0 {
		lag = make(map[string]int64, len(w.replLag))
		for peer, v := range w.replLag {
			lag[peer] = v.Load()
		}
	}
	w.lagMu.Unlock()
	var epoch uint64
	peers := len(w.cfg.Peers)
	if w.topo != nil {
		view := w.topo.View()
		epoch = view.Epoch
		peers = len(view.Nodes)
	}
	return ClusterStats{
		Self:                w.cfg.Self,
		Peers:               peers,
		Replicas:            w.replicaCount(),
		Epoch:               epoch,
		EpochRejects:        w.epochRejects.Load(),
		EpochAdoptions:      w.epochAdoptions.Load(),
		HandoffEntries:      w.handoffEntries.Load(),
		HandoffBytes:        w.handoffBytes.Load(),
		HandoffSessions:     w.handoffSessions.Load(),
		HandoffErrors:       w.handoffErrors.Load(),
		HandoffRounds:       w.handoffRounds.Load(),
		HandoffActive:       w.handoffActive.Load(),
		SessionImports:      w.sessionImports.Load(),
		SessionImportFails:  w.importFailures.Load(),
		PeerFills:           w.peerFills.Load(),
		PeerMisses:          w.peerMisses.Load(),
		PeerPushes:          w.peerPushes.Load(),
		PeerErrors:          w.peerErrors.Load(),
		SessionReplPushes:   w.replPushes.Load(),
		SessionReplFailures: w.replFailures.Load(),
		SessionRebuilds:     w.rebuilds.Load(),
		SessionRebuildFails: w.rebuildFailures.Load(),
		SessionLogs:         w.sessLogs.len(),
		SessionReplicaLag:   lag,
		FastLaneRejects:     w.laneRejects[LaneFast].Load(),
		HeavyLaneRejects:    w.laneRejects[LaneHeavy].Load(),
		FastLaneDepth:       w.adm.Depth(LaneFast),
		HeavyLaneDepth:      w.adm.Depth(LaneHeavy),
	}
}

// workerStats is the worker's /stats body: the service snapshot plus the
// shard section.
type workerStats struct {
	service.Stats
	Cluster ClusterStats `json:"cluster"`
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	w.writeJSON(rw, http.StatusOK, workerStats{Stats: w.svc.StatsSnapshot(), Cluster: w.Stats()})
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.svc.WritePrometheus(rw)
	cs := w.Stats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("regcoal_cluster_peer_fills_total", "Local misses answered from a peer shard's cache.", cs.PeerFills)
	counter("regcoal_cluster_peer_misses_total", "Peer cache lookups that found nothing.", cs.PeerMisses)
	counter("regcoal_cluster_peer_pushes_total", "Computed entries pushed to their owning shard.", cs.PeerPushes)
	counter("regcoal_cluster_peer_errors_total", "Failed peer cache lookups or pushes.", cs.PeerErrors)
	counter("regcoal_session_repl_pushes_total", "Session op-log records replicated to peers.", cs.SessionReplPushes)
	counter("regcoal_session_repl_failures_total", "Session op-log replication pushes that failed.", cs.SessionReplFailures)
	counter("regcoal_session_rebuilds_total", "Sessions rebuilt from a replicated op log after failover.", cs.SessionRebuilds)
	counter("regcoal_session_rebuild_failures_total", "Session rebuilds that failed to replay.", cs.SessionRebuildFails)
	counter("regcoal_epoch_rejects_total", "Internal RPCs rejected 409 for a stale topology epoch.", cs.EpochRejects)
	counter("regcoal_epoch_adoptions_total", "Topology views adopted from a broadcast or 409 exchange.", cs.EpochAdoptions)
	counter("regcoal_handoff_entries_total", "Cache entries streamed to new owners during resharding.", cs.HandoffEntries)
	counter("regcoal_handoff_bytes_total", "Serialized bytes of cache entries streamed during resharding.", cs.HandoffBytes)
	counter("regcoal_handoff_sessions_total", "Sessions exported to new owners (reshard or eviction migration).", cs.HandoffSessions)
	counter("regcoal_handoff_errors_total", "Handoff pushes that failed after the retry round.", cs.HandoffErrors)
	counter("regcoal_handoff_rounds_total", "Topology changes that ran a handoff stream.", cs.HandoffRounds)
	counter("regcoal_session_imports_total", "Sessions made live via the migration import wire.", cs.SessionImports)
	counter("regcoal_session_import_failures_total", "Migration import records rejected.", cs.SessionImportFails)
	fmt.Fprintf(rw, "# HELP regcoal_handoff_active Handoff streams currently running.\n# TYPE regcoal_handoff_active gauge\nregcoal_handoff_active %d\n", cs.HandoffActive)
	if cs.Epoch > 0 {
		fmt.Fprintf(rw, "# HELP regcoal_topology_epoch Current cluster membership epoch.\n# TYPE regcoal_topology_epoch gauge\nregcoal_topology_epoch %d\n", cs.Epoch)
	}
	if len(cs.SessionReplicaLag) > 0 {
		fmt.Fprintf(rw, "# HELP regcoal_session_replica_lag Un-acked session log pushes per peer (rises on push, falls on ack).\n# TYPE regcoal_session_replica_lag gauge\n")
		peers := make([]string, 0, len(cs.SessionReplicaLag))
		for p := range cs.SessionReplicaLag {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			fmt.Fprintf(rw, "regcoal_session_replica_lag{peer=%q} %d\n", p, cs.SessionReplicaLag[p])
		}
	}
	fmt.Fprintf(rw, "# HELP regcoal_cluster_lane_rejects_total Admission rejections per lane.\n# TYPE regcoal_cluster_lane_rejects_total counter\n")
	fmt.Fprintf(rw, "regcoal_cluster_lane_rejects_total{lane=\"fast\"} %d\n", cs.FastLaneRejects)
	fmt.Fprintf(rw, "regcoal_cluster_lane_rejects_total{lane=\"heavy\"} %d\n", cs.HeavyLaneRejects)
	fmt.Fprintf(rw, "# HELP regcoal_cluster_lane_depth Admitted solves per lane.\n# TYPE regcoal_cluster_lane_depth gauge\n")
	fmt.Fprintf(rw, "regcoal_cluster_lane_depth{lane=\"fast\"} %d\n", cs.FastLaneDepth)
	fmt.Fprintf(rw, "regcoal_cluster_lane_depth{lane=\"heavy\"} %d\n", cs.HeavyLaneDepth)
}

// The write helpers mirror the service's: marshal once, write exact
// bytes, nothing non-deterministic in a body.

func (w *Worker) writeJSON(rw http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.svc.Metrics().Errors.Add(1)
		http.Error(rw, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	w.writeRaw(rw, status, data)
}

func (w *Worker) writeRaw(rw http.ResponseWriter, status int, data []byte) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	rw.Write(data)
}

func (w *Worker) writeError(rw http.ResponseWriter, status int, msg string) {
	w.writeJSON(rw, status, service.ErrorResponse{Error: msg})
}
