package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over a fixed node set. Each node owns
// VNodes points on a 64-bit FNV-1a circle; a key belongs to the node
// owning the first point at or after the key's hash. The ring is built
// deterministically from the sorted node set, so every cluster member —
// router and workers alike — computes identical ownership from the same
// peer list, with no coordination protocol.
//
// Keys are canonical graph hashes (graph.CanonicalForm), so relabeled
// duplicates of one instance land on the same shard by construction: the
// shard that computed an instance once owns every disguise of it.
type Ring struct {
	nodes  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// DefaultVNodes is the virtual-node count used when a config leaves it
// zero: enough points that a 3–8 node ring balances within a few percent.
const DefaultVNodes = 64

// NewRing builds a ring over the given nodes (deduplicated, sorted
// internally). vnodes <= 0 uses DefaultVNodes. An empty node set yields a
// ring whose Owner is "".
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for i, n := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(n + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare) break by node index so the ring
		// stays a pure function of the node set.
		return r.points[a].node < r.points[b].node
	})
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Nodes returns a copy of the sorted node set. Returning a copy (not
// the internal slice) means a caller iterating it while a topology swap
// replaces the ring can never observe a mutation — rings are immutable
// and so is everything handed out of one.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key, or "" on an empty ring. The empty
// key is valid: it is the deterministic fallback shard for requests that
// cannot be canonicalized (parse errors, oversize graphs), so every
// cluster member sends such a request to the same worker and the error
// response stays byte-identical to single-node serving.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.nodes[r.points[r.at(key)].node]
}

// at returns the index of key's first ring point.
func (r *Ring) at(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Replicas returns key's ordered replica set: the first min(r,
// len(nodes)) distinct nodes of the ring sequence. Index 0 is the
// primary (== Owner), the rest are the secondaries that receive
// push-on-compute cache entries and replicated session logs. Because
// the set is a prefix of the ring walk, removing a node elsewhere on
// the ring never changes it, and removing a member shifts in exactly
// the next distinct node — minimal movement, per replica slot.
func (r *Ring) Replicas(key string, n int) []string {
	seq := r.Sequence(key)
	if n < len(seq) {
		seq = seq[:n]
	}
	return seq
}

// Sequence returns every node in preference order for key: the owner
// first, then each distinct node in ring order. Callers walk it to fail
// over when the owner is down or draining.
func (r *Ring) Sequence(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.nodes))
	seen := make(map[int]bool, len(r.nodes))
	for i, n := r.at(key), 0; n < len(r.points) && len(out) < len(r.nodes); i, n = (i+1)%len(r.points), n+1 {
		p := r.points[i]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
