package cluster_test

// Observability integration tests: the trace ID threads router → worker,
// the ?trace=1 splice departs from byte-identity only by appending the
// trace object, every /metrics surface survives the strict Prometheus
// linter, and a deadline-hit race leaves its complete member timeline on
// /debug/requests.

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"regcoal/internal/cluster"
	"regcoal/internal/graph"
	"regcoal/internal/obs"
	"regcoal/internal/service"
)

// denseRaceBody builds the dense branch-and-bound instance whose race
// runs long enough to hit a short deadline deterministically.
func denseRaceBody(t *testing.T, deadlineMS int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	g := graph.RandomER(rng, 48, 0.4)
	graph.SprinkleAffinities(rng, g, 14, 100)
	body, err := json.Marshal(&service.Request{
		Graph:      specFromFileT(&graph.File{G: g, K: 6}),
		DeadlineMS: deadlineMS,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestTraceIDThreadsRouterToWorker(t *testing.T) {
	c := startCluster(t, 3, cluster.InProcessOptions{})
	insts := quickInstances(t)
	body := requestBody(t, insts[0].File)

	// Without an inbound ID the router mints one and both router and
	// worker answer with it.
	status, hdr, _ := post(t, c.RouterURL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	id := hdr.Get(service.TraceIDHeader)
	if _, ok := obs.ParseTraceID(id); !ok {
		t.Fatalf("router answered with invalid trace ID %q", id)
	}

	// A client-supplied ID is adopted end to end.
	const want = "00112233445566778899aabbccddeeff"
	req, err := http.NewRequest(http.MethodPost, c.RouterURL+"/v1/allocate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.TraceIDHeader, want)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(service.TraceIDHeader); got != want {
		t.Fatalf("trace ID not adopted: got %q, want %q", got, want)
	}

	// The adopted ID is findable in some worker's recent ring: the solve
	// actually ran under the propagated identity.
	found := false
	for _, w := range c.Workers {
		for _, v := range w.Service.Tracer().Recent(64) {
			if v.ID == want {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("trace %s not recorded on any worker's recent ring", want)
	}
}

func TestTraceSpliceLeavesBaselineBytesUntouched(t *testing.T) {
	c := startCluster(t, 3, cluster.InProcessOptions{})
	insts := quickInstances(t)
	body := requestBody(t, insts[0].File)

	status, _, plain := post(t, c.RouterURL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	status, _, traced := post(t, c.RouterURL+"/v1/coalesce?trace=1", body)
	if status != http.StatusOK {
		t.Fatalf("traced status %d", status)
	}
	if bytes.Equal(plain, traced) {
		t.Fatal("?trace=1 did not change the body")
	}
	// The splice appends before the final brace: every baseline byte up
	// to the closing '}' is untouched.
	if !bytes.HasPrefix(traced, plain[:len(plain)-1]) {
		t.Fatalf("traced body does not extend the baseline body:\nplain  %s\ntraced %s", plain, traced)
	}
	var withTrace struct {
		Trace *obs.TraceView `json:"trace"`
	}
	if err := json.Unmarshal(traced, &withTrace); err != nil {
		t.Fatalf("traced body is not valid JSON: %v", err)
	}
	if withTrace.Trace == nil || withTrace.Trace.ID == "" {
		t.Fatalf("traced body carries no trace object: %s", traced)
	}
	if len(withTrace.Trace.Phases) == 0 {
		t.Fatalf("trace has no phase spans: %s", traced)
	}

	// And the plain body through the cluster stays byte-identical to a
	// single process answering the same request with tracing live.
	_, single := startSingle(t, service.Config{})
	status, _, want := post(t, single.URL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("single status %d", status)
	}
	if !bytes.Equal(plain, want) {
		t.Fatalf("cluster body diverged from single-process body:\ncluster %s\nsingle  %s", plain, want)
	}
}

func TestPrometheusSurfacesPassStrictLint(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{})
	insts := quickInstances(t)

	// Drive enough traffic to populate every family: solves, cache hits,
	// a batch, a deadline hit, and a bad request.
	for _, inst := range insts[:3] {
		body := requestBody(t, inst.File)
		post(t, c.RouterURL+"/v1/coalesce", body)
		post(t, c.RouterURL+"/v1/coalesce", body)
	}
	post(t, c.RouterURL+"/v1/spill", requestBody(t, insts[0].File))
	post(t, c.RouterURL+"/v1/coalesce", denseRaceBody(t, 1))
	post(t, c.RouterURL+"/v1/coalesce", []byte(`{"nope":1}`))
	breq, _ := json.Marshal(&service.BatchSolveRequest{Kind: "coalesce", Items: []service.Request{
		{Graph: specFromFileT(insts[0].File)}, {Graph: specFromFileT(insts[1].File)},
	}})
	post(t, c.RouterURL+"/v1/batch", breq)

	_, single := startSingle(t, service.Config{})
	post(t, single.URL+"/v1/allocate", requestBody(t, insts[0].File))

	surfaces := map[string]string{
		"router":  c.RouterURL + "/metrics",
		"worker0": c.Workers[0].URL + "/metrics",
		"worker1": c.Workers[1].URL + "/metrics",
		"service": single.URL + "/metrics",
	}
	for name, url := range surfaces {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: reading metrics: %v", name, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: /metrics status %d", name, resp.StatusCode)
		}
		if problems := obs.LintPrometheus(string(payload)); len(problems) > 0 {
			t.Errorf("%s /metrics fails lint:\n  %s", name, strings.Join(problems, "\n  "))
		}
	}
}

func TestDeadlineHitRaceTimelineOnDebugRequests(t *testing.T) {
	_, single := startSingle(t, service.Config{})
	body := denseRaceBody(t, 1)

	status, hdr, respBody := post(t, single.URL+"/v1/coalesce?trace=1", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, respBody)
	}
	id := hdr.Get(service.TraceIDHeader)

	var out struct {
		DeadlineHit bool           `json:"deadline_hit"`
		Trace       *obs.TraceView `json:"trace"`
	}
	if err := json.Unmarshal(respBody, &out); err != nil {
		t.Fatal(err)
	}
	if !out.DeadlineHit {
		t.Skip("race finished inside a 1ms deadline on this machine")
	}
	if out.Trace == nil || len(out.Trace.Race) == 0 {
		t.Fatalf("?trace=1 body carries no race timeline: %s", respBody)
	}

	// The same timeline is on /debug/requests, complete: every member
	// has a start/end and a state, at least one was cut off by the
	// deadline, and the recorded winner appears among the members.
	resp, err := http.Get(single.URL + "/debug/requests?view=recent&n=64")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var debug struct {
		View     string          `json:"view"`
		Requests []obs.TraceView `json:"requests"`
	}
	if err := json.Unmarshal(data, &debug); err != nil {
		t.Fatalf("decoding /debug/requests: %v\n%s", err, data)
	}
	views := debug.Requests
	var tr *obs.TraceView
	for i := range views {
		if views[i].ID == id {
			tr = &views[i]
		}
	}
	if tr == nil {
		t.Fatalf("trace %s not on /debug/requests recent ring", id)
	}
	if !tr.DeadlineHit {
		t.Fatalf("trace %s not marked deadline_hit: %+v", id, tr)
	}
	if len(tr.Race) == 0 {
		t.Fatalf("trace %s has no member timeline", id)
	}
	cutoff, winner := false, false
	for _, m := range tr.Race {
		if m.Strategy == "" || m.State == "" {
			t.Fatalf("incomplete member span: %+v", m)
		}
		if m.EndNS < m.StartNS {
			t.Fatalf("member %s ends before it starts: %+v", m.Strategy, m)
		}
		if m.State == "cutoff" {
			cutoff = true
		}
		if m.State == "won" {
			winner = true
			if tr.Winner != m.Strategy {
				t.Fatalf("winner mismatch: trace says %q, member timeline says %q", tr.Winner, m.Strategy)
			}
		}
	}
	if !winner {
		t.Fatalf("no member marked won: %+v", tr.Race)
	}
	if !cutoff {
		t.Fatalf("deadline-hit race has no cutoff member: %+v", tr.Race)
	}

	// The text rendering names the same race, for humans with curl.
	resp, err = http.Get(single.URL + "/debug/requests?view=recent&format=text&n=64")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(text), id) {
		t.Fatalf("text view missing trace %s:\n%s", id, text)
	}
}

// TestRouterShardMetricsFamilies checks satellite coverage: the router
// exports per-shard counters and latency histograms that lint cleanly
// and agree with /stats.
func TestRouterShardMetricsFamilies(t *testing.T) {
	c := startCluster(t, 3, cluster.InProcessOptions{})
	insts := quickInstances(t)
	for _, inst := range insts[:4] {
		post(t, c.RouterURL+"/v1/coalesce", requestBody(t, inst.File))
	}

	st := c.Router.Stats()
	if len(st.PerShard) == 0 {
		t.Fatal("no per-shard stats after traffic")
	}
	var total int64
	for node, sh := range st.PerShard {
		if sh.Forwarded <= 0 {
			t.Fatalf("shard %s has zero forwarded despite being listed", node)
		}
		if int64(sh.Latency.Count) != sh.Forwarded {
			t.Fatalf("shard %s latency count %d != forwarded %d", node, sh.Latency.Count, sh.Forwarded)
		}
		total += sh.Forwarded
	}
	if total != st.Proxied {
		t.Fatalf("per-shard forwarded sums to %d, proxied is %d", total, st.Proxied)
	}

	resp, err := http.Get(c.RouterURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(payload)
	for _, family := range []string{
		"regcoal_router_shard_requests_total",
		"regcoal_router_shard_failovers_total",
		"regcoal_router_shard_fallback_total",
		"regcoal_router_shard_latency_seconds_bucket",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("router /metrics missing %s", family)
		}
	}
	if problems := obs.LintPrometheus(text); len(problems) > 0 {
		t.Errorf("router /metrics fails lint:\n  %s", strings.Join(problems, "\n  "))
	}
}

// TestWorkerPhasesHeaderThroughRouter checks the X-Regcoal-Phases
// breakdown survives the proxy hop and parses into the known phases.
func TestWorkerPhasesHeaderThroughRouter(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{})
	insts := quickInstances(t)
	status, hdr, _ := post(t, c.RouterURL+"/v1/coalesce", requestBody(t, insts[0].File))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	phases := obs.ParsePhases(hdr.Get(service.PhasesHeader))
	if len(phases) == 0 {
		t.Fatalf("no phases header through router (got %q)", hdr.Get(service.PhasesHeader))
	}
	for _, want := range []string{"decode", "canon"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("phases header missing %s: %v", want, phases)
		}
	}
	for name, ns := range phases {
		if ns < 0 {
			t.Errorf("phase %s negative duration %d", name, ns)
		}
		if obs.ParsePhase(name) == obs.NumPhases {
			t.Errorf("unknown phase %q in header", name)
		}
	}
}
