package cluster_test

// Session failover: a delta-solve session is primary-sticky, but its
// create/delta op log is replicated to the secondary of its base hash's
// replica set. Killing the primary mid-session must therefore degrade
// the session to "rebuildable", not "gone": the next delta routes to the
// secondary, which replays the log and answers the exact bytes the
// uninterrupted primary would have. The reference for "exact bytes" is a
// single-process service replaying the same log and applying the same
// batches.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"slices"
	"testing"

	"regcoal/internal/cluster"
	"regcoal/internal/corpus"
	"regcoal/internal/service"
	"regcoal/internal/session"
)

func TestSessionFailoverRebuildsFromReplicatedLog(t *testing.T) {
	if testing.Short() {
		t.Skip("failover matrix runs full edit-script sessions per case")
	}
	scfg := service.Config{Workers: 2, QueueCap: 64}
	cases := []struct {
		family string
		kill   int // batches applied on the primary before it dies
	}{
		{family: "chordal", kill: 3},
		{family: "chordal", kill: 6},
		{family: "ssa-pressure", kill: 1},
		{family: "ssa-pressure", kill: 5},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%s-kill%d", tc.family, tc.kill), func(t *testing.T) {
			c := startCluster(t, 3, cluster.InProcessOptions{Service: scfg})

			fams, err := corpus.Select(tc.family)
			if err != nil {
				t.Fatal(err)
			}
			insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20060408, Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			inst := insts[0]

			createBody, err := json.Marshal(service.DeltaRequest{Op: "create", Graph: specFromFileT(inst.File)})
			if err != nil {
				t.Fatal(err)
			}
			status, hdr, resp := post(t, c.RouterURL+"/v1/coalesce/delta", createBody)
			if status != http.StatusOK {
				t.Fatalf("create: status %d: %s", status, resp)
			}
			var created service.DeltaResponse
			if err := json.Unmarshal(resp, &created); err != nil {
				t.Fatal(err)
			}
			primary := hdr.Get("X-Regcoal-Shard")
			primaryIdx := -1
			var secondaryW *cluster.InProcessWorker
			replicas := c.Router.Ring().Replicas(created.BaseHash, cluster.DefaultReplicas)
			if len(replicas) != 2 || replicas[0] != primary {
				t.Fatalf("create landed on %s, replica set is %v", primary, replicas)
			}
			for i, w := range c.Workers {
				if w.URL == primary {
					primaryIdx = i
				}
				if w.URL == replicas[1] {
					secondaryW = w
				}
			}
			if primaryIdx < 0 || secondaryW == nil {
				t.Fatalf("could not resolve primary/secondary from %v", replicas)
			}

			// The uninterrupted reference: a single-process service seeded
			// with the same session (same id, via the replay path the
			// secondary itself uses) answering the same batches.
			refSvc, ref := startSingle(t, scfg)
			if err := refSvc.ReplaySession(created.SessionID, created.BaseHash, createBody, nil); err != nil {
				t.Fatal(err)
			}

			script := corpus.GenEditScript(inst.File, inst.File.K, corpus.ScriptSeed(inst.File), 16)
			batches := make([][]session.Delta, 0, 8)
			for len(script) > 0 {
				n := min(2, len(script))
				batches = append(batches, script[:n])
				script = script[n:]
			}
			if tc.kill >= len(batches) {
				t.Fatalf("kill point %d outside the %d-batch script", tc.kill, len(batches))
			}

			for i, batch := range batches {
				if i == tc.kill {
					if err := c.StopWorker(primaryIdx); err != nil {
						t.Fatal(err)
					}
				}
				v := int64(i)
				body, err := json.Marshal(service.DeltaRequest{
					SessionID: created.SessionID,
					BaseHash:  created.BaseHash,
					Version:   &v,
					Deltas:    batch,
				})
				if err != nil {
					t.Fatal(err)
				}
				wantStatus, _, want := post(t, ref.URL+"/v1/coalesce/delta", body)
				if wantStatus != http.StatusOK {
					t.Fatalf("reference delta %d: status %d: %s", i, wantStatus, want)
				}
				gotStatus, ghdr, got := post(t, c.RouterURL+"/v1/coalesce/delta", body)
				if gotStatus != http.StatusOK {
					t.Fatalf("delta %d: status %d: %s", i, gotStatus, got)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("delta %d: cluster bytes differ from uninterrupted reference:\n%s\n%s", i, got, want)
				}
				shard := ghdr.Get("X-Regcoal-Shard")
				if i < tc.kill && shard != primary {
					t.Fatalf("delta %d landed on %s before the kill, want primary %s", i, shard, primary)
				}
				if i >= tc.kill && shard != secondaryW.URL {
					t.Fatalf("delta %d landed on %s after the kill, want secondary %s", i, shard, secondaryW.URL)
				}
			}

			if rebuilds := secondaryW.Worker.Stats().SessionRebuilds; rebuilds != 1 {
				t.Fatalf("secondary rebuilt the session %d times, want exactly 1", rebuilds)
			}
			if r := c.Router.Stats().Retries; r == 0 {
				t.Fatal("no router retries recorded across a primary death")
			}

			// Close must survive failover too, and land on the secondary.
			closeBody, err := json.Marshal(service.DeltaRequest{
				Op: "close", SessionID: created.SessionID, BaseHash: created.BaseHash})
			if err != nil {
				t.Fatal(err)
			}
			status, chdr, cresp := post(t, c.RouterURL+"/v1/coalesce/delta", closeBody)
			if status != http.StatusOK {
				t.Fatalf("close after failover: status %d: %s", status, cresp)
			}
			if shard := chdr.Get("X-Regcoal-Shard"); shard != secondaryW.URL {
				t.Fatalf("close landed on %s, want secondary %s", shard, secondaryW.URL)
			}
		})
	}
}

// Read-your-writes across the replica set: an entry computed anywhere is
// pushed to every replica owner, so a client re-asking any replica gets
// a local cache hit, and only non-replicas pay a peer-fill hop.
func TestReplicatedPushGivesReadYourWrites(t *testing.T) {
	c := startCluster(t, 3, cluster.InProcessOptions{
		Service: service.Config{Workers: 2, QueueCap: 64},
	})
	insts := quickInstances(t)
	inst := insts[0] // chordal: WL-discriminated, relabel-invariant hash
	body := requestBody(t, inst.File)
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	replicas := c.Router.Ring().Replicas(service.RoutingHash(&req, 0), cluster.DefaultReplicas)
	if len(replicas) != 2 {
		t.Fatalf("replica set %v, want 2 owners", replicas)
	}

	status, _, want := post(t, c.RouterURL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("routed solve: status %d: %s", status, want)
	}

	var secondary, outsider *cluster.InProcessWorker
	for _, w := range c.Workers {
		switch {
		case w.URL == replicas[1]:
			secondary = w
		case !slices.Contains(replicas, w.URL):
			outsider = w
		}
	}
	if secondary == nil || outsider == nil {
		t.Fatalf("could not split secondary/outsider from %v", replicas)
	}

	// The secondary received the push on compute: local hit, no peer hop.
	status, hdr, got := post(t, secondary.URL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("secondary solve: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("secondary bytes differ from routed bytes:\n%s\n%s", got, want)
	}
	if tier := hdr.Get("X-Regcoal-Tier"); tier != "local" {
		t.Fatalf("secondary tier %q, want local (pushed on compute)", tier)
	}
	if disp := hdr.Get("X-Regcoal-Cache"); disp != "hit" {
		t.Fatalf("secondary disposition %q, want hit", disp)
	}

	// A worker outside the replica set holds nothing and fills from an
	// owner instead of recomputing.
	status, hdr, got = post(t, outsider.URL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("outsider solve: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("outsider bytes differ from routed bytes:\n%s\n%s", got, want)
	}
	if tier := hdr.Get("X-Regcoal-Tier"); tier != "peer" {
		t.Fatalf("outsider tier %q, want peer", tier)
	}
}
