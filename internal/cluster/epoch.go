package cluster

// Worker side of the epoch protocol. Every internal RPC a worker sends
// (peer fill, cache push, session log, handoff stream, session import)
// is stamped with the sender's topology epoch; every internal RPC a
// worker receives is checked against its own. A mismatch in either
// direction is a structured 409 carrying the receiver's full view, and
// the sender reconciles from the rejection alone — adopting the
// receiver's view when the receiver is ahead, pushing its own view to
// the receiver when the receiver is behind — then retries the RPC once.
// Absent or malformed epoch headers are accepted (epoch-agnostic
// senders: older binaries, manual curl, the router's solve forwards).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// stampEpoch sets the epoch header from the worker's current view.
func (w *Worker) stampEpoch(req *http.Request) {
	if w.topo != nil {
		req.Header.Set(EpochHeader, fmt.Sprintf("%d", w.topo.Epoch()))
	}
}

// checkEpoch validates an inbound internal RPC's epoch against the
// worker's view. On a mismatch it answers the structured 409 (carrying
// this worker's full view, so the sender can reconcile) and returns
// false; the handler must stop. Header-less requests pass.
func (w *Worker) checkEpoch(rw http.ResponseWriter, r *http.Request) bool {
	if w.topo == nil {
		return true
	}
	got, ok := parseEpochHeader(r)
	if !ok {
		return true
	}
	view := w.topo.View()
	if got == view.Epoch {
		return true
	}
	w.epochRejects.Add(1)
	writeStaleEpoch(rw, got, view)
	return false
}

// doEpochRequest performs one internal RPC with the epoch protocol:
// build constructs a fresh request (it runs again on retry — bodies are
// single-use), the epoch header is stamped, and a stale-epoch 409 is
// reconciled and retried exactly once. Any other response — including a
// 409 that is not a stale-epoch body, such as the session import's
// "already live" — is returned to the caller with its body intact.
func (w *Worker) doEpochRequest(peer string, build func() (*http.Request, error)) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		w.stampEpoch(req)
		resp, err := w.client.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusConflict || attempt > 0 {
			return resp, nil
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		var se staleEpoch
		if json.Unmarshal(body, &se) != nil || se.Topology.Epoch == 0 {
			// A 409 that is not a stale-epoch rejection: hand it back
			// with the body restored for the caller to read.
			resp.Body = io.NopCloser(bytes.NewReader(body))
			return resp, nil
		}
		w.reconcileEpoch(peer, &se)
	}
}

// reconcileEpoch resolves a stale-epoch rejection from peer: if the
// peer's view is newer, adopt it (which also starts this worker's own
// handoff for the ranges it lost); if this worker's view is newer, push
// it to the peer so the next attempt lands on a current receiver.
func (w *Worker) reconcileEpoch(peer string, se *staleEpoch) {
	if w.topo == nil {
		return
	}
	view := w.topo.View()
	if se.Topology.Epoch > view.Epoch {
		w.adoptTopology(se.Topology.Epoch, se.Topology.Nodes)
		return
	}
	if se.Topology.Epoch < view.Epoch {
		w.pushTopology(peer, view)
	}
}

// pushTopology offers this worker's view to a behind peer (best-effort:
// the peer's own 409 exchanges will heal it eventually regardless).
func (w *Worker) pushTopology(peer string, view *TopologyView) {
	payload, err := json.Marshal(view.Wire())
	if err != nil {
		return
	}
	req, err := http.NewRequest(http.MethodPost, peer+"/internal/topology", bytes.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	w.stampEpoch(req)
	resp, err := w.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// adoptTopology installs a broadcast view if its epoch is strictly
// higher, and on a real change starts the handoff: the old view becomes
// the bounded read fallback while this worker streams its reassigned
// cache entries and sessions to their new owners.
func (w *Worker) adoptTopology(epoch uint64, nodes []string) {
	if w.topo == nil {
		return
	}
	old, installed, changed := w.topo.Adopt(epoch, nodes)
	if !changed {
		return
	}
	w.epochAdoptions.Add(1)
	w.startHandoff(old, installed)
}

// handleInternalTopology is the worker's membership wire: GET returns
// the current view; POST is the broadcast/reconcile path installing a
// full {epoch, nodes} view. Equal epochs are an idempotent no-op; a
// lower epoch gets the structured 409 so the stale broadcaster heals.
func (w *Worker) handleInternalTopology(rw http.ResponseWriter, r *http.Request) {
	if w.topo == nil {
		w.writeError(rw, http.StatusNotFound, "not clustered")
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.writeJSON(rw, http.StatusOK, w.topo.View().Wire())
	case http.MethodPost:
		var wire TopologyWire
		dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, 1<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wire); err != nil {
			w.writeError(rw, http.StatusBadRequest, fmt.Sprintf("decoding topology: %v", err))
			return
		}
		if wire.Epoch == 0 || len(wire.Nodes) == 0 {
			w.writeError(rw, http.StatusBadRequest, "topology requires epoch >= 1 and a non-empty node set")
			return
		}
		view := w.topo.View()
		if wire.Epoch < view.Epoch {
			w.epochRejects.Add(1)
			writeStaleEpoch(rw, wire.Epoch, view)
			return
		}
		w.adoptTopology(wire.Epoch, wire.Nodes)
		rw.WriteHeader(http.StatusNoContent)
	default:
		w.writeError(rw, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// HandoffWait blocks until no handoff is streaming (or ctx expires) —
// the drain path calls it after announcing a leave, so a departing
// worker finishes pushing its reassigned state before shutting down.
func (w *Worker) HandoffWait(ctx context.Context) error {
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		if w.handoffActive.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}
