// Package cluster is the distributed serving tier over internal/service:
// a consistent-hash router shards requests by canonical graph hash across
// worker nodes, each worker wraps the service solve path with admission
// lanes and a tiered (local LRU + peer fill) cache, and a batch endpoint
// fans one decode pass out per shard. The tier's contract is that a
// multi-node cluster answers every request with bytes identical to a
// single-process service: routing, caching, and fan-out may change where
// and whether an instance is computed, never what the client reads.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regcoal/internal/obs"
	"regcoal/internal/service"
)

// Router is the cluster's front door. It owns no solver: it decodes just
// enough of each request to compute the canonical routing hash, forwards
// the original body verbatim to the owning worker, and copies the
// worker's response verbatim back. Requests that cannot be canonicalized
// (parse errors, missing register counts, oversize graphs) go to the
// deterministic fallback shard — ring owner of the empty key — whose
// worker reproduces the exact single-node error body.
//
// Failover walks the ring sequence: a worker that is unreachable or
// fails its readiness probe (draining) is skipped for the next node.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client
	mux    *http.ServeMux
	ids    *obs.Tracer // trace-ID mint only; the router keeps no spans

	proxied       atomic.Int64
	batchRequests atomic.Int64
	batchItems    atomic.Int64
	fallback      atomic.Int64
	failovers     atomic.Int64
	noWorker      atomic.Int64
	perShard      map[string]*shardStats // immutable after NewRouter

	readyMu sync.Mutex
	ready   map[string]readyState
}

// shardStats is one worker's view from the router: how much traffic it
// answered, how it came to answer (owner, failover target, fallback
// shard), and the forward latency distribution. The map of these is
// built once from the worker list, so the hot path is lock-free.
type shardStats struct {
	forwarded atomic.Int64 // requests this worker answered
	failovers atomic.Int64 // ...while standing in for an unready owner
	fallback  atomic.Int64 // ...for unroutable (fallback-keyed) requests
	lat       obs.Histogram
}

type readyState struct {
	ok bool
	at time.Time
}

// RouterConfig parameterizes a Router. The limits must match the
// workers' service config for the router's routing decisions to agree
// with worker-side validation.
type RouterConfig struct {
	// Workers lists the worker base URLs (http://host:port).
	Workers []string
	// VNodes is the ring's virtual-node count (default DefaultVNodes).
	// Must match the workers'.
	VNodes int
	// MaxVertices mirrors the workers' service MaxVertices (default
	// 200000): oversize graphs route to the fallback shard for the
	// worker's own 400.
	MaxVertices int
	// MaxBatch mirrors the workers' service MaxBatch (default 256).
	MaxBatch int
	// MaxBodyBytes bounds a request body (default 64 MiB).
	MaxBodyBytes int64
	// Client performs worker traffic (default 60s timeout).
	Client *http.Client
	// ReadyTTL caches worker readiness probes (default 500ms).
	ReadyTTL time.Duration
}

func (c *RouterConfig) fillDefaults() {
	if c.MaxVertices <= 0 {
		c.MaxVertices = 200000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.ReadyTTL <= 0 {
		c.ReadyTTL = 500 * time.Millisecond
	}
}

// NewRouter builds a router over the worker set.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.fillDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one worker")
	}
	r := &Router{
		cfg:      cfg,
		ring:     NewRing(cfg.Workers, cfg.VNodes),
		client:   cfg.Client,
		mux:      http.NewServeMux(),
		ids:      obs.NewTracer(1, 1, time.Hour),
		perShard: make(map[string]*shardStats, len(cfg.Workers)),
		ready:    make(map[string]readyState),
	}
	for _, node := range cfg.Workers {
		r.perShard[node] = &shardStats{}
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 60 * time.Second}
	}
	r.mux.HandleFunc("/v1/coalesce", r.handleProxy)
	r.mux.HandleFunc("/v1/allocate", r.handleProxy)
	r.mux.HandleFunc("/v1/spill", r.handleProxy)
	r.mux.HandleFunc("/v1/coalesce/delta", r.handleDelta)
	r.mux.HandleFunc("/v1/batch", r.handleBatch)
	r.mux.HandleFunc("/healthz", r.handleLivez)
	r.mux.HandleFunc("/livez", r.handleLivez)
	r.mux.HandleFunc("/readyz", r.handleLivez)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	r.mux.HandleFunc("/stats", r.handleStats)
	return r, nil
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(rw http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(rw, req) }

// Ring exposes the router's ring (tests).
func (r *Router) Ring() *Ring { return r.ring }

// handleProxy serves the three single-solve endpoints: hash, pick the
// owner, forward verbatim.
func (r *Router) handleProxy(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.proxied.Add(1)
	traceID := r.traceID(req)
	rw.Header().Set(service.TraceIDHeader, traceID)
	body, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(rw, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	key := r.routingKey(body)
	if key == "" {
		r.fallback.Add(1)
	}
	r.forward(rw, req, key, body, traceID)
}

// traceID adopts the client's X-Regcoal-Trace-Id when valid, otherwise
// mints a fresh one: the router is where a cluster request's identity is
// born, and every worker and peer-fill hop downstream carries it.
func (r *Router) traceID(req *http.Request) string {
	if id, ok := obs.ParseTraceID(req.Header.Get(service.TraceIDHeader)); ok {
		return id.String()
	}
	return r.ids.NewID().String()
}

// routingKey extracts the canonical routing hash from a request body, or
// "" for anything that must go to the fallback shard. The decode here is
// deliberately lenient (no unknown-field rejection): its only job is
// routing — the worker's strict decode against the verbatim body is what
// produces error responses, so they stay byte-identical to single-node.
func (r *Router) routingKey(body []byte) string {
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	if len(req.Batch) > 0 {
		// Legacy in-request batches are not split; the whole request goes
		// to one deterministic shard. POST /v1/batch is the sharded path.
		return ""
	}
	return service.RoutingHash(&req, r.cfg.MaxVertices)
}

// handleDelta serves the session endpoint: route by the session's base
// graph hash so every operation of a session lands on the shard that
// owns it. A create request hashes the base graph itself (the same hash
// the worker mints as base_hash); delta and close requests must echo
// base_hash to stay shard-sticky — without it they route to the fallback
// shard, whose worker answers 404 unless it happens to own the session.
func (r *Router) handleDelta(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.proxied.Add(1)
	traceID := r.traceID(req)
	rw.Header().Set(service.TraceIDHeader, traceID)
	body, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(rw, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	key := r.deltaRoutingKey(body)
	if key == "" {
		r.fallback.Add(1)
	}
	r.forward(rw, req, key, body, traceID)
}

// deltaRoutingKey extracts the base-graph hash from a delta-session
// request: base_hash verbatim when present, else (create) the canonical
// hash of the carried graph — computed exactly like the worker computes
// base_hash, so the create lands where the deltas will.
func (r *Router) deltaRoutingKey(body []byte) string {
	var req service.DeltaRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	if req.BaseHash != "" {
		return req.BaseHash
	}
	if req.Graph == nil {
		return ""
	}
	return service.RoutingHash(&service.Request{Graph: req.Graph, K: req.K}, r.cfg.MaxVertices)
}

// forward sends body to the first available worker in key's ring
// sequence and copies the response verbatim, tagging the shard that
// answered in X-Regcoal-Shard. The client request's path, query (so
// ?trace=1 reaches the worker), and trace opt-in headers ride along.
func (r *Router) forward(rw http.ResponseWriter, req *http.Request, key string, body []byte, traceID string) {
	path := req.URL.Path
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	status, hdr, respBody, node, err := r.forwardTo(path, key, body, traceID, req)
	if err != nil {
		r.noWorker.Add(1)
		r.writeError(rw, http.StatusBadGateway, err.Error())
		return
	}
	for _, h := range []string{"X-Regcoal-Cache", "X-Regcoal-Tier", service.PhasesHeader, "Content-Type"} {
		if v := hdr.Get(h); v != "" {
			rw.Header().Set(h, v)
		}
	}
	rw.Header().Set("X-Regcoal-Shard", node)
	rw.WriteHeader(status)
	rw.Write(respBody)
}

// forwardTo tries each node in key's ring sequence: skip nodes failing
// their cached readiness probe, fail over on transport errors. The
// answering shard's counters and latency histogram record the attempt;
// traceID and the client's trace opt-in headers propagate to the worker.
// clientReq may be nil (batch sub-requests carry no per-item opt-ins).
func (r *Router) forwardTo(path, key string, body []byte, traceID string, clientReq *http.Request) (status int, hdr http.Header, respBody []byte, node string, err error) {
	seq := r.ring.Sequence(key)
	var lastErr error
	for i, candidate := range seq {
		if !r.isReady(candidate) {
			continue
		}
		failedOver := i > 0
		if failedOver {
			r.failovers.Add(1)
		}
		freq, ferr := http.NewRequest(http.MethodPost, candidate+path, bytes.NewReader(body))
		if ferr != nil {
			lastErr = ferr
			continue
		}
		freq.Header.Set("Content-Type", "application/json")
		if traceID != "" {
			freq.Header.Set(service.TraceIDHeader, traceID)
		}
		if clientReq != nil {
			for _, h := range []string{service.TraceHeader, service.FamilyHeader} {
				if v := clientReq.Header.Get(h); v != "" {
					freq.Header.Set(h, v)
				}
			}
		}
		start := time.Now()
		resp, ferr := r.client.Do(freq)
		if ferr != nil {
			r.markUnready(candidate)
			lastErr = ferr
			continue
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		r.countShard(candidate, failedOver, key == "", time.Since(start))
		return resp.StatusCode, resp.Header, data, candidate, nil
	}
	if lastErr != nil {
		return 0, nil, nil, "", fmt.Errorf("no worker available: %v", lastErr)
	}
	return 0, nil, nil, "", fmt.Errorf("no worker available")
}

// isReady consults the cached readiness of node, probing /readyz when
// the cache entry is stale. A draining worker answers 503 and is skipped
// until its probe recovers.
func (r *Router) isReady(node string) bool {
	r.readyMu.Lock()
	st, ok := r.ready[node]
	r.readyMu.Unlock()
	if ok && time.Since(st.at) < r.cfg.ReadyTTL {
		return st.ok
	}
	ready := false
	resp, err := r.client.Get(node + "/readyz")
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ready = resp.StatusCode == http.StatusOK
	}
	r.readyMu.Lock()
	r.ready[node] = readyState{ok: ready, at: time.Now()}
	r.readyMu.Unlock()
	return ready
}

func (r *Router) markUnready(node string) {
	r.readyMu.Lock()
	r.ready[node] = readyState{ok: false, at: time.Now()}
	r.readyMu.Unlock()
}

func (r *Router) countShard(node string, failedOver, fallbackKey bool, d time.Duration) {
	st, ok := r.perShard[node]
	if !ok {
		return
	}
	st.forwarded.Add(1)
	if failedOver {
		st.failovers.Add(1)
	}
	if fallbackKey {
		st.fallback.Add(1)
	}
	st.lat.Observe(d)
}

// rawBatchResponse splices worker batch responses without re-encoding:
// each entry's bytes pass through verbatim, so the assembled body is
// byte-identical to a single process answering the whole batch.
type rawBatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// handleBatch serves POST /v1/batch: decode once, group items per owning
// shard, fan out one sub-batch per shard concurrently, splice the
// results back into request order. Any request that fails batch-level
// validation is forwarded verbatim to the fallback shard so the error
// body is the worker's own.
func (r *Router) handleBatch(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.batchRequests.Add(1)
	traceID := r.traceID(req)
	rw.Header().Set(service.TraceIDHeader, traceID)
	body, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(rw, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	var breq service.BatchSolveRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if derr := dec.Decode(&breq); derr != nil {
		r.forward(rw, req, "", body, traceID)
		return
	}
	if _, kerr := service.ParseKind(breq.Kind); kerr != nil {
		r.forward(rw, req, "", body, traceID)
		return
	}
	if len(breq.Items) == 0 || len(breq.Items) > r.cfg.MaxBatch {
		r.forward(rw, req, "", body, traceID)
		return
	}
	r.batchItems.Add(int64(len(breq.Items)))

	// Group item indices by owning shard; remember one representative
	// routing key per shard so failover walks the ring from the owner.
	type group struct {
		key     string
		indices []int
	}
	groups := make(map[string]*group)
	for i := range breq.Items {
		key := ""
		if len(breq.Items[i].Batch) == 0 {
			key = service.RoutingHash(&breq.Items[i], r.cfg.MaxVertices)
		}
		owner := r.ring.Owner(key)
		g, ok := groups[owner]
		if !ok {
			g = &group{key: key}
			groups[owner] = g
		}
		g.indices = append(g.indices, i)
	}

	owners := make([]string, 0, len(groups))
	for o := range groups {
		owners = append(owners, o)
	}
	sort.Strings(owners)

	results := make([]json.RawMessage, len(breq.Items))
	var wg sync.WaitGroup
	for _, o := range owners {
		g := groups[o]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := service.BatchSolveRequest{Kind: breq.Kind, Items: make([]service.Request, len(g.indices))}
			for j, idx := range g.indices {
				sub.Items[j] = breq.Items[idx]
			}
			subBody, merr := json.Marshal(&sub)
			if merr != nil {
				r.fillErrors(results, g.indices, fmt.Sprintf("encoding shard batch: %v", merr))
				return
			}
			status, _, respBody, _, ferr := r.forwardTo(req.URL.Path, g.key, subBody, traceID, req)
			if ferr != nil {
				r.noWorker.Add(1)
				r.fillErrors(results, g.indices, fmt.Sprintf("shard unavailable: %v", ferr))
				return
			}
			var sresp rawBatchResponse
			if status != http.StatusOK || json.Unmarshal(respBody, &sresp) != nil || len(sresp.Results) != len(g.indices) {
				r.fillErrors(results, g.indices, fmt.Sprintf("shard answered status %d", status))
				return
			}
			for j, idx := range g.indices {
				results[idx] = sresp.Results[j]
			}
		}()
	}
	wg.Wait()

	data, merr := json.Marshal(rawBatchResponse{Results: results})
	if merr != nil {
		r.writeError(rw, http.StatusInternalServerError, "encoding response")
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusOK)
	rw.Write(data)
}

// fillErrors writes a per-item error entry for every index of a failed
// shard group, leaving the other shards' results intact.
func (r *Router) fillErrors(results []json.RawMessage, indices []int, msg string) {
	data, err := json.Marshal(service.BatchEntry{Error: msg})
	if err != nil {
		data = []byte(`{"error":"shard unavailable"}`)
	}
	for _, idx := range indices {
		results[idx] = data
	}
}

func (r *Router) handleLivez(rw http.ResponseWriter, req *http.Request) {
	r.writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

// ShardSummary is one worker's traffic breakdown as the router saw it:
// how many requests it answered, how many of those were failover or
// fallback-shard traffic, and the forward latency distribution.
type ShardSummary struct {
	Forwarded int64               `json:"forwarded"`
	Failovers int64               `json:"failovers"`
	Fallback  int64               `json:"fallback"`
	Latency   obs.QuantileSummary `json:"latency"`
}

// RouterStats is the router's counter snapshot, served on /stats.
type RouterStats struct {
	Workers       []string                `json:"workers"`
	Proxied       int64                   `json:"proxied"`
	BatchRequests int64                   `json:"batch_requests"`
	BatchItems    int64                   `json:"batch_items"`
	Fallback      int64                   `json:"fallback_routed"`
	Failovers     int64                   `json:"failovers"`
	NoWorker      int64                   `json:"no_worker"`
	PerShard      map[string]ShardSummary `json:"per_shard"`
}

// Stats returns the router's counters. Shards that never answered a
// request are omitted, so per_shard reads as "who carried traffic".
func (r *Router) Stats() RouterStats {
	per := make(map[string]ShardSummary, len(r.perShard))
	for node, st := range r.perShard {
		fwd := st.forwarded.Load()
		if fwd == 0 {
			continue
		}
		per[node] = ShardSummary{
			Forwarded: fwd,
			Failovers: st.failovers.Load(),
			Fallback:  st.fallback.Load(),
			Latency:   st.lat.Summary(),
		}
	}
	return RouterStats{
		Workers:       r.ring.Nodes(),
		Proxied:       r.proxied.Load(),
		BatchRequests: r.batchRequests.Load(),
		BatchItems:    r.batchItems.Load(),
		Fallback:      r.fallback.Load(),
		Failovers:     r.failovers.Load(),
		NoWorker:      r.noWorker.Load(),
		PerShard:      per,
	}
}

func (r *Router) handleStats(rw http.ResponseWriter, req *http.Request) {
	r.writeJSON(rw, http.StatusOK, r.Stats())
}

func (r *Router) handleMetrics(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := r.Stats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("regcoal_router_proxied_total", "Single-solve requests proxied.", st.Proxied)
	counter("regcoal_router_batch_requests_total", "POST /v1/batch requests.", st.BatchRequests)
	counter("regcoal_router_batch_items_total", "Batch items fanned out.", st.BatchItems)
	counter("regcoal_router_fallback_total", "Requests routed to the fallback shard.", st.Fallback)
	counter("regcoal_router_failovers_total", "Requests answered by a non-owner after failover.", st.Failovers)
	counter("regcoal_router_no_worker_total", "Requests that found no available worker.", st.NoWorker)
	nodes := make([]string, 0, len(st.PerShard))
	for n := range st.PerShard {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	shardCounter := func(name, help string, pick func(ShardSummary) int64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, n := range nodes {
			fmt.Fprintf(rw, "%s{shard=%q} %d\n", name, n, pick(st.PerShard[n]))
		}
	}
	if len(nodes) > 0 {
		shardCounter("regcoal_router_shard_requests_total", "Requests answered per shard.",
			func(s ShardSummary) int64 { return s.Forwarded })
		shardCounter("regcoal_router_shard_failovers_total", "Requests a shard answered while standing in for an unready owner.",
			func(s ShardSummary) int64 { return s.Failovers })
		shardCounter("regcoal_router_shard_fallback_total", "Fallback-keyed (unroutable) requests a shard answered.",
			func(s ShardSummary) int64 { return s.Fallback })
		obs.WritePrometheusHeader(rw, "regcoal_router_shard_latency_seconds", "Router-observed forward latency per shard.")
		for _, n := range nodes {
			r.perShard[n].lat.WritePrometheus(rw, "regcoal_router_shard_latency_seconds", fmt.Sprintf("shard=%q", n))
		}
	}
}

func (r *Router) writeJSON(rw http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(rw, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	rw.Write(data)
}

func (r *Router) writeError(rw http.ResponseWriter, status int, msg string) {
	r.writeJSON(rw, status, service.ErrorResponse{Error: msg})
}
