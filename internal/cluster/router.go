// Package cluster is the distributed serving tier over internal/service:
// a consistent-hash router shards requests by canonical graph hash across
// worker nodes, each worker wraps the service solve path with admission
// lanes and a tiered (local LRU + peer fill) cache, and a batch endpoint
// fans one decode pass out per shard. The tier's contract is that a
// multi-node cluster answers every request with bytes identical to a
// single-process service: routing, caching, and fan-out may change where
// and whether an instance is computed, never what the client reads.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regcoal/internal/obs"
	"regcoal/internal/service"
)

// Router is the cluster's front door. It owns no solver: it decodes just
// enough of each request to compute the canonical routing hash, forwards
// the original body verbatim to the owning worker, and copies the
// worker's response verbatim back. Requests that cannot be canonicalized
// (parse errors, missing register counts, oversize graphs) go to the
// deterministic fallback shard — ring owner of the empty key — whose
// worker reproduces the exact single-node error body.
//
// Failover walks the ring sequence — the replica set first, then the
// remaining nodes in ring order — under a per-request retry budget:
// attempts that fail in transport or answer 5xx retry the next distinct
// node after a capped, jittered exponential backoff, and (for idempotent
// endpoints) a hedged second attempt races the next replica once the
// first has been in flight longer than HedgeAfter. A worker that is
// unreachable or fails its readiness probe (draining) is skipped.
type Router struct {
	cfg    RouterConfig
	topo   *Topology
	client *http.Client
	mux    *http.ServeMux
	ids    *obs.Tracer // trace-ID mint only; the router keeps no spans

	proxied         atomic.Int64
	batchRequests   atomic.Int64
	batchItems      atomic.Int64
	fallback        atomic.Int64
	failovers       atomic.Int64
	retries         atomic.Int64
	hedges          atomic.Int64
	readyProbes     atomic.Int64
	noWorker        atomic.Int64
	topologyUpdates atomic.Int64
	broadcastFails  atomic.Int64

	shardMu  sync.Mutex
	perShard map[string]*shardStats // grown lazily as nodes answer traffic

	readyMu sync.Mutex
	ready   map[string]readyState
	probeMu map[string]*sync.Mutex // per-node probe singleflight; grown lazily

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// shardStats is one worker's view from the router: how much traffic it
// answered, how it came to answer (owner, failover target, fallback
// shard), and the forward latency distribution. Entries are created on a
// node's first answer and never removed (a departed node's history stays
// readable), so the hot path is one short lock to fetch the pointer.
type shardStats struct {
	forwarded atomic.Int64 // requests this worker answered
	failovers atomic.Int64 // ...while standing in for an unready owner
	fallback  atomic.Int64 // ...for unroutable (fallback-keyed) requests
	lat       obs.Histogram
}

type readyState struct {
	ok bool
	at time.Time
}

// RouterConfig parameterizes a Router. The limits must match the
// workers' service config for the router's routing decisions to agree
// with worker-side validation.
type RouterConfig struct {
	// Workers lists the worker base URLs (http://host:port).
	Workers []string
	// VNodes is the ring's virtual-node count (default DefaultVNodes).
	// Must match the workers'.
	VNodes int
	// MaxVertices mirrors the workers' service MaxVertices (default
	// 200000): oversize graphs route to the fallback shard for the
	// worker's own 400.
	MaxVertices int
	// MaxBatch mirrors the workers' service MaxBatch (default 256).
	MaxBatch int
	// MaxBodyBytes bounds a request body (default 64 MiB).
	MaxBodyBytes int64
	// Client performs worker traffic (default 60s timeout).
	Client *http.Client
	// ReadyTTL caches worker readiness probes (default 500ms).
	ReadyTTL time.Duration
	// Replicas is the replica-set size R each hash range is owned by
	// (default 2, capped by the worker count). Must match the workers'.
	Replicas int
	// RetryBudget caps total attempts per request — the first try plus
	// retries plus any hedge (default 3).
	RetryBudget int
	// HedgeAfter launches a hedged attempt at the next replica once the
	// current attempt has been in flight this long without answering.
	// Zero disables hedging (the in-process/test default: a hedge
	// duplicates compute on a second shard, which perturbs cluster-wide
	// solve counts that several differential tests pin down).
	HedgeAfter time.Duration
	// BackoffBase and BackoffCap bound the jittered exponential backoff
	// between retry attempts (defaults 10ms and 200ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
}

func (c *RouterConfig) fillDefaults() {
	if c.MaxVertices <= 0 {
		c.MaxVertices = 200000
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.ReadyTTL <= 0 {
		c.ReadyTTL = 500 * time.Millisecond
	}
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 200 * time.Millisecond
	}
}

// DefaultReplicas is the replica-set size used when a config leaves it
// zero.
const DefaultReplicas = 2

// NewRouter builds a router over the worker set.
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg.fillDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one worker")
	}
	r := &Router{
		cfg:      cfg,
		topo:     NewTopology(cfg.Workers, cfg.VNodes),
		client:   cfg.Client,
		mux:      http.NewServeMux(),
		ids:      obs.NewTracer(1, 1, time.Hour),
		perShard: make(map[string]*shardStats, len(cfg.Workers)),
		ready:    make(map[string]readyState),
		probeMu:  make(map[string]*sync.Mutex, len(cfg.Workers)),
		jitter:   rand.New(rand.NewSource(hashSeed(cfg.Workers))),
	}
	if r.client == nil {
		r.client = &http.Client{Timeout: 60 * time.Second}
	}
	r.mux.HandleFunc("/v1/coalesce", r.handleProxy)
	r.mux.HandleFunc("/v1/allocate", r.handleProxy)
	r.mux.HandleFunc("/v1/spill", r.handleProxy)
	r.mux.HandleFunc("/v1/coalesce/delta", r.handleDelta)
	r.mux.HandleFunc("/v1/batch", r.handleBatch)
	r.mux.HandleFunc("/internal/topology", r.handleTopology)
	r.mux.HandleFunc("/healthz", r.handleLivez)
	r.mux.HandleFunc("/livez", r.handleLivez)
	r.mux.HandleFunc("/readyz", r.handleLivez)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	r.mux.HandleFunc("/stats", r.handleStats)
	return r, nil
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(rw http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(rw, req) }

// Ring exposes the current view's ring (tests). The pointer is a
// snapshot: a concurrent topology change installs a new ring rather than
// mutating this one.
func (r *Router) Ring() *Ring { return r.topo.View().Ring }

// Topology exposes the router's membership object.
func (r *Router) Topology() *Topology { return r.topo }

// handleTopology is the admin surface of live membership. GET returns
// the current {epoch, nodes} view. POST applies an add/remove/full-set
// update CAS-guarded by from_epoch, broadcasts the new view to the union
// of the old and new node sets (so a leaving node learns it left and
// starts its handoff), invalidates every cached readiness probe (a
// rejoined worker must not stay masked as unready for a stale TTL
// window), and answers the new view. A CAS miss answers the structured
// stale-epoch 409.
func (r *Router) handleTopology(rw http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodGet:
		r.writeJSON(rw, http.StatusOK, r.topo.View().Wire())
	case http.MethodPost:
		var upd topologyUpdate
		dec := json.NewDecoder(http.MaxBytesReader(rw, req.Body, r.cfg.MaxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&upd); err != nil {
			r.writeError(rw, http.StatusBadRequest, fmt.Sprintf("decoding topology update: %v", err))
			return
		}
		old := r.topo.View()
		from := upd.FromEpoch
		if from == 0 {
			from = old.Epoch
		}
		nodes, err := upd.applyEdit(old.Nodes)
		if err != nil {
			r.writeError(rw, http.StatusBadRequest, err.Error())
			return
		}
		if len(nodes) == 0 {
			r.writeError(rw, http.StatusBadRequest, "topology update: node set would be empty")
			return
		}
		next, err := r.topo.CAS(from, nodes)
		if err != nil {
			writeStaleEpoch(rw, from, next)
			return
		}
		r.topologyUpdates.Add(1)
		r.invalidateReadiness()
		r.broadcastTopology(old, next)
		r.writeJSON(rw, http.StatusOK, next.Wire())
	default:
		r.writeError(rw, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

// invalidateReadiness drops every cached readiness probe. Called on each
// epoch change: membership just moved, so a node marked unready under
// the old view (it was down, draining, or leaving) must be re-probed
// immediately rather than skipped for the remainder of its TTL window.
func (r *Router) invalidateReadiness() {
	r.readyMu.Lock()
	r.ready = make(map[string]readyState)
	r.readyMu.Unlock()
}

// broadcastTopology pushes the new view to the union of the old and new
// node sets, concurrently and best-effort: a node that misses the
// broadcast reconciles through the stale-epoch 409 exchange on its next
// internal RPC.
func (r *Router) broadcastTopology(old, next *TopologyView) {
	targets := make([]string, 0, len(old.Nodes)+len(next.Nodes))
	seen := make(map[string]bool, cap(targets))
	for _, n := range append(append([]string(nil), next.Nodes...), old.Nodes...) {
		if !seen[n] {
			seen[n] = true
			targets = append(targets, n)
		}
	}
	body, err := json.Marshal(next.Wire())
	if err != nil {
		r.broadcastFails.Add(int64(len(targets)))
		return
	}
	var wg sync.WaitGroup
	for _, node := range targets {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, node+"/internal/topology", bytes.NewReader(body))
			if err != nil {
				r.broadcastFails.Add(1)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := r.client.Do(req)
			if err != nil {
				r.broadcastFails.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode >= http.StatusInternalServerError {
				r.broadcastFails.Add(1)
			}
		}(node)
	}
	wg.Wait()
}

// handleProxy serves the three single-solve endpoints: hash, pick the
// owner, forward verbatim.
func (r *Router) handleProxy(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.proxied.Add(1)
	traceID := r.traceID(req)
	rw.Header().Set(service.TraceIDHeader, traceID)
	body, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(rw, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	key := r.routingKey(body)
	if key == "" {
		r.fallback.Add(1)
	}
	r.forward(rw, req, key, body, traceID, true)
}

// traceID adopts the client's X-Regcoal-Trace-Id when valid, otherwise
// mints a fresh one: the router is where a cluster request's identity is
// born, and every worker and peer-fill hop downstream carries it.
func (r *Router) traceID(req *http.Request) string {
	if id, ok := obs.ParseTraceID(req.Header.Get(service.TraceIDHeader)); ok {
		return id.String()
	}
	return r.ids.NewID().String()
}

// routingKey extracts the canonical routing hash from a request body, or
// "" for anything that must go to the fallback shard. The decode here is
// deliberately lenient (no unknown-field rejection): its only job is
// routing — the worker's strict decode against the verbatim body is what
// produces error responses, so they stay byte-identical to single-node.
func (r *Router) routingKey(body []byte) string {
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	if len(req.Batch) > 0 {
		// Legacy in-request batches are not split; the whole request goes
		// to one deterministic shard. POST /v1/batch is the sharded path.
		return ""
	}
	return service.RoutingHash(&req, r.cfg.MaxVertices)
}

// handleDelta serves the session endpoint: route by the session's base
// graph hash so every operation of a session lands on the shard that
// owns it. A create request hashes the base graph itself (the same hash
// the worker mints as base_hash); delta and close requests must echo
// base_hash to stay shard-sticky — without it they route to the fallback
// shard, whose worker answers 404 unless it happens to own the session.
func (r *Router) handleDelta(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.proxied.Add(1)
	traceID := r.traceID(req)
	rw.Header().Set(service.TraceIDHeader, traceID)
	body, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(rw, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	key := r.deltaRoutingKey(body)
	if key == "" {
		r.fallback.Add(1)
	}
	// No hedging here: a delta batch is not idempotent, and a hedged
	// duplicate landing on a replica could rebuild and apply the session
	// divergently. Retries stay on — a transport failure means the
	// primary never answered, and the next replica rebuilds from the
	// replicated log; a duplicate of an already-applied versioned batch
	// is caught by the optimistic-concurrency guard (409).
	r.forward(rw, req, key, body, traceID, false)
}

// deltaRoutingKey extracts the base-graph hash from a delta-session
// request: base_hash verbatim when present, else (create) the canonical
// hash of the carried graph — computed exactly like the worker computes
// base_hash, so the create lands where the deltas will.
func (r *Router) deltaRoutingKey(body []byte) string {
	var req service.DeltaRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return ""
	}
	if req.BaseHash != "" {
		return req.BaseHash
	}
	if req.Graph == nil {
		return ""
	}
	return service.RoutingHash(&service.Request{Graph: req.Graph, K: req.K}, r.cfg.MaxVertices)
}

// forward sends body to key's replica set under the retry budget and
// copies the winning response verbatim, tagging the shard that answered
// in X-Regcoal-Shard. The client request's path, query (so ?trace=1
// reaches the worker), and trace opt-in headers ride along. hedge
// enables the hedged second attempt — callers disable it for
// non-idempotent bodies (session deltas), where a raced duplicate could
// apply twice.
func (r *Router) forward(rw http.ResponseWriter, req *http.Request, key string, body []byte, traceID string, hedge bool) {
	path := req.URL.Path
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	status, hdr, respBody, node, err := r.forwardTo(path, key, body, traceID, req, hedge)
	if err != nil {
		r.noWorker.Add(1)
		r.writeError(rw, http.StatusBadGateway, err.Error())
		return
	}
	for _, h := range []string{"X-Regcoal-Cache", "X-Regcoal-Tier", service.PhasesHeader, "Content-Type"} {
		if v := hdr.Get(h); v != "" {
			rw.Header().Set(h, v)
		}
	}
	rw.Header().Set("X-Regcoal-Shard", node)
	rw.WriteHeader(status)
	rw.Write(respBody)
}

// attemptResult is one forward attempt's outcome.
type attemptResult struct {
	status     int
	hdr        http.Header
	body       []byte
	node       string
	failedOver bool
	dur        time.Duration
	err        error
}

// attempt performs one forward to node and reports the outcome. A
// transport error marks the node unready so concurrent and subsequent
// requests skip it for a ReadyTTL window.
func (r *Router) attempt(node, path string, body []byte, traceID string, clientReq *http.Request, failedOver bool) attemptResult {
	res := attemptResult{node: node, failedOver: failedOver}
	freq, err := http.NewRequest(http.MethodPost, node+path, bytes.NewReader(body))
	if err != nil {
		res.err = err
		return res
	}
	freq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		freq.Header.Set(service.TraceIDHeader, traceID)
	}
	if clientReq != nil {
		for _, h := range []string{service.TraceHeader, service.FamilyHeader} {
			if v := clientReq.Header.Get(h); v != "" {
				freq.Header.Set(h, v)
			}
		}
	}
	start := time.Now()
	resp, err := r.client.Do(freq)
	if err != nil {
		r.markUnready(node)
		res.err = err
		return res
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		res.err = err
		return res
	}
	res.status = resp.StatusCode
	res.hdr = resp.Header
	res.body = data
	res.dur = time.Since(start)
	return res
}

// forwardTo answers one request through key's ring sequence — replica
// set first — under the retry budget. Attempts that fail in transport
// or answer 5xx retry the next distinct node (never the same node
// twice) after a capped, jittered exponential backoff; when hedge is
// set, a duplicate attempt races the next candidate once the current
// one has been in flight longer than HedgeAfter, and the first
// non-5xx answer wins. Unready nodes are skipped. Only when every
// candidate has failed does the client see a 5xx: the last 5xx body
// verbatim, or a 502 when no node could even be reached. The answering
// shard's counters and latency histogram record the attempt; traceID
// and the client's trace opt-in headers propagate to the worker.
// clientReq may be nil (batch sub-requests carry no per-item opt-ins).
func (r *Router) forwardTo(path, key string, body []byte, traceID string, clientReq *http.Request, hedge bool) (status int, hdr http.Header, respBody []byte, node string, err error) {
	seq := r.topo.View().Ring.Sequence(key)
	results := make(chan attemptResult, len(seq)+1)
	next, launched, inFlight := 0, 0, 0
	launch := func() bool {
		for next < len(seq) {
			candidate := seq[next]
			failedOver := next > 0
			next++
			if !r.isReady(candidate) {
				continue
			}
			if failedOver {
				r.failovers.Add(1)
			}
			launched++
			inFlight++
			go func() {
				results <- r.attempt(candidate, path, body, traceID, clientReq, failedOver)
			}()
			return true
		}
		return false
	}
	launch()

	var hedgeC <-chan time.Time
	if hedge && r.cfg.HedgeAfter > 0 && inFlight > 0 {
		ht := time.NewTimer(r.cfg.HedgeAfter)
		defer ht.Stop()
		hedgeC = ht.C
	}
	var backoffT *time.Timer
	var backoffC <-chan time.Time
	defer func() {
		if backoffT != nil {
			backoffT.Stop()
		}
	}()
	var last attemptResult
	haveLast := false
	for inFlight > 0 || backoffC != nil {
		select {
		case res := <-results:
			inFlight--
			if res.err == nil && res.status < http.StatusInternalServerError {
				r.countShard(res.node, res.failedOver, key == "", res.dur)
				return res.status, res.hdr, res.body, res.node, nil
			}
			last, haveLast = res, true
			if launched < r.cfg.RetryBudget && next < len(seq) && backoffC == nil {
				r.retries.Add(1)
				backoffT = time.NewTimer(r.backoff(launched))
				backoffC = backoffT.C
			}
		case <-backoffC:
			backoffC = nil
			launch()
		case <-hedgeC:
			hedgeC = nil
			if launched < r.cfg.RetryBudget && launch() {
				r.hedges.Add(1)
			}
		}
	}
	if haveLast && last.err == nil {
		// Every candidate answered 5xx: relay the last body verbatim so
		// the client sees the worker's own error, not a router wrapper.
		r.countShard(last.node, last.failedOver, key == "", last.dur)
		return last.status, last.hdr, last.body, last.node, nil
	}
	if haveLast {
		return 0, nil, nil, "", fmt.Errorf("no worker available: %v", last.err)
	}
	return 0, nil, nil, "", fmt.Errorf("no worker available")
}

// backoff returns the pre-retry wait after `attempt` launched attempts:
// BackoffBase doubling per attempt, capped at BackoffCap, with the
// upper half jittered to decorrelate concurrent retry storms.
func (r *Router) backoff(attempt int) time.Duration {
	d := r.cfg.BackoffBase
	for i := 1; i < attempt && d < r.cfg.BackoffCap; i++ {
		d *= 2
	}
	if d > r.cfg.BackoffCap {
		d = r.cfg.BackoffCap
	}
	r.jitterMu.Lock()
	j := time.Duration(r.jitter.Int63n(int64(d)/2 + 1))
	r.jitterMu.Unlock()
	return d/2 + j
}

// hashSeed folds the worker list into the jitter seed, so distinct
// routers decorrelate without consulting a clock.
func hashSeed(nodes []string) int64 {
	h := fnv.New64a()
	for _, n := range nodes {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// isReady consults the cached readiness of node, probing /readyz when
// the cache entry is stale. A draining worker answers 503 and is skipped
// until its probe recovers. The probe itself is singleflighted per
// node: when a stale entry is hit by many concurrent requests, exactly
// one of them probes and the rest reuse its fresh result — at most one
// probe per peer per ReadyTTL window, no thundering herd on the
// failover path.
func (r *Router) isReady(node string) bool {
	if ok, fresh := r.readyCached(node); fresh {
		return ok
	}
	r.readyMu.Lock()
	mu := r.probeMu[node]
	if mu == nil {
		// First probe of a node (including ones that joined after
		// construction): create its singleflight lock on demand.
		mu = &sync.Mutex{}
		r.probeMu[node] = mu
	}
	r.readyMu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	// Re-check: the probe that held the lock first has refreshed the
	// cache for everyone who queued behind it.
	if ok, fresh := r.readyCached(node); fresh {
		return ok
	}
	ready := r.probe(node)
	r.readyMu.Lock()
	r.ready[node] = readyState{ok: ready, at: time.Now()}
	r.readyMu.Unlock()
	return ready
}

// readyCached returns node's cached readiness and whether the entry is
// still fresh.
func (r *Router) readyCached(node string) (ok, fresh bool) {
	r.readyMu.Lock()
	st, have := r.ready[node]
	r.readyMu.Unlock()
	if have && time.Since(st.at) < r.cfg.ReadyTTL {
		return st.ok, true
	}
	return false, false
}

// probe performs one GET /readyz.
func (r *Router) probe(node string) bool {
	r.readyProbes.Add(1)
	resp, err := r.client.Get(node + "/readyz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (r *Router) markUnready(node string) {
	r.readyMu.Lock()
	r.ready[node] = readyState{ok: false, at: time.Now()}
	r.readyMu.Unlock()
}

func (r *Router) countShard(node string, failedOver, fallbackKey bool, d time.Duration) {
	r.shardMu.Lock()
	st, ok := r.perShard[node]
	if !ok {
		st = &shardStats{}
		r.perShard[node] = st
	}
	r.shardMu.Unlock()
	st.forwarded.Add(1)
	if failedOver {
		st.failovers.Add(1)
	}
	if fallbackKey {
		st.fallback.Add(1)
	}
	st.lat.Observe(d)
}

// rawBatchResponse splices worker batch responses without re-encoding:
// each entry's bytes pass through verbatim, so the assembled body is
// byte-identical to a single process answering the whole batch.
type rawBatchResponse struct {
	Results []json.RawMessage `json:"results"`
}

// handleBatch serves POST /v1/batch: decode once, group items per owning
// shard, fan out one sub-batch per shard concurrently, splice the
// results back into request order. Any request that fails batch-level
// validation is forwarded verbatim to the fallback shard so the error
// body is the worker's own.
func (r *Router) handleBatch(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		r.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	r.batchRequests.Add(1)
	traceID := r.traceID(req)
	rw.Header().Set(service.TraceIDHeader, traceID)
	body, err := io.ReadAll(http.MaxBytesReader(rw, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(rw, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	var breq service.BatchSolveRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if derr := dec.Decode(&breq); derr != nil {
		r.forward(rw, req, "", body, traceID, true)
		return
	}
	if _, kerr := service.ParseKind(breq.Kind); kerr != nil {
		r.forward(rw, req, "", body, traceID, true)
		return
	}
	if len(breq.Items) == 0 || len(breq.Items) > r.cfg.MaxBatch {
		r.forward(rw, req, "", body, traceID, true)
		return
	}
	r.batchItems.Add(int64(len(breq.Items)))

	// Group item indices by owning shard; remember one representative
	// routing key per shard so failover walks the ring from the owner.
	type group struct {
		key     string
		indices []int
	}
	groups := make(map[string]*group)
	ring := r.topo.View().Ring
	for i := range breq.Items {
		key := ""
		if len(breq.Items[i].Batch) == 0 {
			key = service.RoutingHash(&breq.Items[i], r.cfg.MaxVertices)
		}
		owner := ring.Owner(key)
		g, ok := groups[owner]
		if !ok {
			g = &group{key: key}
			groups[owner] = g
		}
		g.indices = append(g.indices, i)
	}

	owners := make([]string, 0, len(groups))
	for o := range groups {
		owners = append(owners, o)
	}
	sort.Strings(owners)

	results := make([]json.RawMessage, len(breq.Items))
	var wg sync.WaitGroup
	for _, o := range owners {
		g := groups[o]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := service.BatchSolveRequest{Kind: breq.Kind, Items: make([]service.Request, len(g.indices))}
			for j, idx := range g.indices {
				sub.Items[j] = breq.Items[idx]
			}
			subBody, merr := json.Marshal(&sub)
			if merr != nil {
				r.fillErrors(results, g.indices, fmt.Sprintf("encoding shard batch: %v", merr))
				return
			}
			status, _, respBody, _, ferr := r.forwardTo(req.URL.Path, g.key, subBody, traceID, req, true)
			if ferr != nil {
				r.noWorker.Add(1)
				r.fillErrors(results, g.indices, fmt.Sprintf("shard unavailable: %v", ferr))
				return
			}
			var sresp rawBatchResponse
			if status != http.StatusOK || json.Unmarshal(respBody, &sresp) != nil || len(sresp.Results) != len(g.indices) {
				r.fillErrors(results, g.indices, fmt.Sprintf("shard answered status %d", status))
				return
			}
			for j, idx := range g.indices {
				results[idx] = sresp.Results[j]
			}
		}()
	}
	wg.Wait()

	data, merr := json.Marshal(rawBatchResponse{Results: results})
	if merr != nil {
		r.writeError(rw, http.StatusInternalServerError, "encoding response")
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusOK)
	rw.Write(data)
}

// fillErrors writes a per-item error entry for every index of a failed
// shard group, leaving the other shards' results intact.
func (r *Router) fillErrors(results []json.RawMessage, indices []int, msg string) {
	data, err := json.Marshal(service.BatchEntry{Error: msg})
	if err != nil {
		data = []byte(`{"error":"shard unavailable"}`)
	}
	for _, idx := range indices {
		results[idx] = data
	}
}

func (r *Router) handleLivez(rw http.ResponseWriter, req *http.Request) {
	r.writeJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
}

// ShardSummary is one worker's traffic breakdown as the router saw it:
// how many requests it answered, how many of those were failover or
// fallback-shard traffic, and the forward latency distribution.
type ShardSummary struct {
	Forwarded int64               `json:"forwarded"`
	Failovers int64               `json:"failovers"`
	Fallback  int64               `json:"fallback"`
	Latency   obs.QuantileSummary `json:"latency"`
}

// RouterStats is the router's counter snapshot, served on /stats.
type RouterStats struct {
	Workers         []string                `json:"workers"`
	Epoch           uint64                  `json:"epoch"`
	Replicas        int                     `json:"replicas"`
	Proxied         int64                   `json:"proxied"`
	BatchRequests   int64                   `json:"batch_requests"`
	BatchItems      int64                   `json:"batch_items"`
	Fallback        int64                   `json:"fallback_routed"`
	Failovers       int64                   `json:"failovers"`
	Retries         int64                   `json:"retries"`
	Hedges          int64                   `json:"hedges"`
	ReadyProbes     int64                   `json:"ready_probes"`
	NoWorker        int64                   `json:"no_worker"`
	TopologyUpdates int64                   `json:"topology_updates"`
	BroadcastFails  int64                   `json:"topology_broadcast_failures"`
	PerShard        map[string]ShardSummary `json:"per_shard"`
}

// shardSnapshot copies the per-shard stat pointers under the lock.
func (r *Router) shardSnapshot() map[string]*shardStats {
	r.shardMu.Lock()
	defer r.shardMu.Unlock()
	out := make(map[string]*shardStats, len(r.perShard))
	for node, st := range r.perShard {
		out[node] = st
	}
	return out
}

// Stats returns the router's counters. Shards that never answered a
// request are omitted, so per_shard reads as "who carried traffic".
func (r *Router) Stats() RouterStats {
	shards := r.shardSnapshot()
	per := make(map[string]ShardSummary, len(shards))
	for node, st := range shards {
		fwd := st.forwarded.Load()
		if fwd == 0 {
			continue
		}
		per[node] = ShardSummary{
			Forwarded: fwd,
			Failovers: st.failovers.Load(),
			Fallback:  st.fallback.Load(),
			Latency:   st.lat.Summary(),
		}
	}
	view := r.topo.View()
	return RouterStats{
		Workers:         view.Nodes,
		Epoch:           view.Epoch,
		Replicas:        r.cfg.Replicas,
		Proxied:         r.proxied.Load(),
		BatchRequests:   r.batchRequests.Load(),
		BatchItems:      r.batchItems.Load(),
		Fallback:        r.fallback.Load(),
		Failovers:       r.failovers.Load(),
		Retries:         r.retries.Load(),
		Hedges:          r.hedges.Load(),
		ReadyProbes:     r.readyProbes.Load(),
		NoWorker:        r.noWorker.Load(),
		TopologyUpdates: r.topologyUpdates.Load(),
		BroadcastFails:  r.broadcastFails.Load(),
		PerShard:        per,
	}
}

func (r *Router) handleStats(rw http.ResponseWriter, req *http.Request) {
	r.writeJSON(rw, http.StatusOK, r.Stats())
}

func (r *Router) handleMetrics(rw http.ResponseWriter, req *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	st := r.Stats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("regcoal_router_proxied_total", "Single-solve requests proxied.", st.Proxied)
	counter("regcoal_router_batch_requests_total", "POST /v1/batch requests.", st.BatchRequests)
	counter("regcoal_router_batch_items_total", "Batch items fanned out.", st.BatchItems)
	counter("regcoal_router_fallback_total", "Requests routed to the fallback shard.", st.Fallback)
	counter("regcoal_router_failovers_total", "Requests answered by a non-owner after failover.", st.Failovers)
	counter("regcoal_router_retries_total", "Attempts retried on a further replica after a transport error or 5xx.", st.Retries)
	counter("regcoal_router_hedges_total", "Hedged attempts launched after HedgeAfter without an answer.", st.Hedges)
	counter("regcoal_router_ready_probes_total", "Readiness probes issued (singleflighted per peer per ReadyTTL window).", st.ReadyProbes)
	counter("regcoal_router_no_worker_total", "Requests that found no available worker.", st.NoWorker)
	counter("regcoal_router_topology_updates_total", "Admin topology updates applied (epoch bumps).", st.TopologyUpdates)
	counter("regcoal_router_topology_broadcast_failures_total", "Topology broadcast pushes that failed.", st.BroadcastFails)
	fmt.Fprintf(rw, "# HELP regcoal_topology_epoch Current cluster membership epoch.\n# TYPE regcoal_topology_epoch gauge\nregcoal_topology_epoch %d\n", st.Epoch)
	nodes := make([]string, 0, len(st.PerShard))
	for n := range st.PerShard {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	shardCounter := func(name, help string, pick func(ShardSummary) int64) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, n := range nodes {
			fmt.Fprintf(rw, "%s{shard=%q} %d\n", name, n, pick(st.PerShard[n]))
		}
	}
	if len(nodes) > 0 {
		shardCounter("regcoal_router_shard_requests_total", "Requests answered per shard.",
			func(s ShardSummary) int64 { return s.Forwarded })
		shardCounter("regcoal_router_shard_failovers_total", "Requests a shard answered while standing in for an unready owner.",
			func(s ShardSummary) int64 { return s.Failovers })
		shardCounter("regcoal_router_shard_fallback_total", "Fallback-keyed (unroutable) requests a shard answered.",
			func(s ShardSummary) int64 { return s.Fallback })
		obs.WritePrometheusHeader(rw, "regcoal_router_shard_latency_seconds", "Router-observed forward latency per shard.")
		shards := r.shardSnapshot()
		for _, n := range nodes {
			shards[n].lat.WritePrometheus(rw, "regcoal_router_shard_latency_seconds", fmt.Sprintf("shard=%q", n))
		}
	}
}

func (r *Router) writeJSON(rw http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(rw, `{"error":"encoding response"}`, http.StatusInternalServerError)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	rw.Write(data)
}

func (r *Router) writeError(rw http.ResponseWriter, status int, msg string) {
	r.writeJSON(rw, status, service.ErrorResponse{Error: msg})
}
