package cluster_test

// Chaos harness: the cluster's byte-identity contract must hold not just
// on the happy path but under injected failure. A seeded fault plan
// blackholes one worker mid-run and makes another answer 10% injected
// 500s; the router's retry/hedge machinery has to absorb both so that
// every response a client reads is byte-identical to a single-process
// service and no injected fault ever surfaces as a client-visible 5xx.
// Determinism is the point: the same plan produces the same fault
// sequence on every run, so these are regression tests, not flake
// roulette.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regcoal/internal/cluster"
	"regcoal/internal/faultinject"
	"regcoal/internal/obs"
	"regcoal/internal/service"
)

// The acceptance criterion for the chaos harness: a 3-worker R=2 cluster
// with w1 blackholed from its 6th request and w2 injecting 10% 500s
// answers every corpus family on every endpoint byte-identically to a
// single-process service, with zero client-visible 5xx and a nonzero
// retry count.
func TestChaosDifferentialByteIdentityUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos differential solves the corpus twice per endpoint")
	}
	scfg := service.Config{Workers: 4, QueueCap: 512}
	_, single := startSingle(t, scfg)
	plan := &faultinject.Plan{
		Seed: 42,
		Rules: []faultinject.Rule{
			// w1 goes dark mid-run: every client-side request to it (router
			// forwards, peer fills, readiness probes) fails in transport.
			{Peer: "w1", Mode: faultinject.ModeBlackhole, From: 5},
			// w2 stays up but misbehaves: 10% of its inbound solve requests
			// answer an injected 500 before the handler runs.
			{Peer: "w2", Mode: faultinject.ModeError, Prob: 0.10},
		},
	}
	c := startCluster(t, 3, cluster.InProcessOptions{Service: scfg, Fault: plan})

	insts := quickInstances(t)
	for _, ep := range allEndpoints {
		for _, inst := range insts {
			body := requestBody(t, inst.File)
			wantStatus, _, want := post(t, single.URL+ep, body)
			gotStatus, _, got := post(t, c.RouterURL+ep, body)
			if gotStatus >= http.StatusInternalServerError {
				t.Fatalf("%s %s: injected fault leaked to the client as %d: %s", ep, inst.Name, gotStatus, got)
			}
			if gotStatus != wantStatus || !bytes.Equal(got, want) {
				t.Fatalf("%s %s under chaos: cluster (%d) differs from single (%d):\n%s\n%s",
					ep, inst.Name, gotStatus, wantStatus, got, want)
			}
		}
	}

	// /v1/batch fans out per shard; a faulted shard group must retry to a
	// healthy worker rather than degrade its items to error entries.
	for _, kind := range []string{"coalesce", "allocate", "spill"} {
		breq := service.BatchSolveRequest{Kind: kind}
		for _, inst := range insts {
			breq.Items = append(breq.Items, service.Request{Graph: specFromFileT(inst.File)})
		}
		body, err := json.Marshal(&breq)
		if err != nil {
			t.Fatal(err)
		}
		wantStatus, _, want := post(t, single.URL+"/v1/batch", body)
		gotStatus, _, got := post(t, c.RouterURL+"/v1/batch", body)
		if gotStatus != wantStatus || !bytes.Equal(got, want) {
			t.Fatalf("batch %s under chaos: cluster (%d) differs from single (%d):\n%s\n%s",
				kind, gotStatus, wantStatus, got, want)
		}
	}

	// The run must actually have exercised the machinery under test: the
	// plan fired (drops from the blackhole, injected errors from w2) and
	// the router retried around the damage.
	if r := c.Router.Stats().Retries; r == 0 {
		t.Fatal("no router retries recorded under a plan that blackholes a worker")
	}
	drops := c.RouterInjector.Stats().Drops
	injected := int64(0)
	for _, w := range c.Workers {
		drops += w.Injector.Stats().Drops
		injected += w.Injector.Stats().Errors
	}
	if drops == 0 {
		t.Fatal("blackhole rule never fired")
	}
	if injected == 0 {
		t.Fatal("error rule never fired")
	}
}

func get(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// fakeWorker is a canned worker for router-mechanism tests: always
// ready, answers solve POSTs with a fixed body after an adjustable
// delay, optionally failing the first solve requests.
type fakeWorker struct {
	srv        *httptest.Server
	body       []byte
	delay      atomic.Int64 // nanoseconds before answering a solve
	fail       atomic.Int64 // remaining solve requests to answer 500
	readyz     atomic.Int64 // readiness probes received
	solves     atomic.Int64
	readyDelay time.Duration
}

func newFakeWorker(t *testing.T, name string) *fakeWorker {
	t.Helper()
	f := &fakeWorker{body: []byte(fmt.Sprintf(`{"worker":%q}`, name))}
	f.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			f.readyz.Add(1)
			time.Sleep(f.readyDelay)
			rw.WriteHeader(http.StatusOK)
			return
		}
		if !strings.HasPrefix(r.URL.Path, "/v1/") {
			rw.WriteHeader(http.StatusOK)
			return
		}
		f.solves.Add(1)
		if d := f.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if f.fail.Add(-1) >= 0 {
			rw.Header().Set("Content-Type", "application/json")
			rw.WriteHeader(http.StatusInternalServerError)
			rw.Write([]byte(`{"error":"canned failure"}`))
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusOK)
		rw.Write(f.body)
	}))
	t.Cleanup(f.srv.Close)
	f.fail.Store(0)
	return f
}

// Hedging: when the owning shard is healthy but slow, the router
// launches a duplicate attempt at the next replica after HedgeAfter and
// the first answer wins — the client sees the fast replica's bytes, not
// the slow owner's tail latency.
func TestHedgedRequestFailsOverSlowPrimary(t *testing.T) {
	a := newFakeWorker(t, "a")
	b := newFakeWorker(t, "b")
	workers := []string{a.srv.URL, b.srv.URL}
	byURL := map[string]*fakeWorker{a.srv.URL: a, b.srv.URL: b}

	router, err := cluster.NewRouter(cluster.RouterConfig{
		Workers:    workers,
		HedgeAfter: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router)
	t.Cleanup(front.Close)

	body := requestBody(t, quickInstances(t)[0].File)
	var req service.Request
	if err := json.Unmarshal(body, &req); err != nil {
		t.Fatal(err)
	}
	seq := router.Ring().Sequence(service.RoutingHash(&req, 0))
	owner, standby := byURL[seq[0]], byURL[seq[1]]
	owner.delay.Store(int64(400 * time.Millisecond))

	status, hdr, got := post(t, front.URL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("hedged request: status %d: %s", status, got)
	}
	if !bytes.Equal(got, standby.body) {
		t.Fatalf("hedged request answered %s, want the fast standby's body %s", got, standby.body)
	}
	if shard := hdr.Get("X-Regcoal-Shard"); shard != seq[1] {
		t.Fatalf("answer attributed to shard %s, want standby %s", shard, seq[1])
	}
	st := router.Stats()
	if st.Hedges == 0 {
		t.Fatal("no hedge recorded for a 400ms owner under a 25ms hedge threshold")
	}
	if owner.solves.Load() == 0 {
		t.Fatal("owner never attempted: hedge should duplicate, not replace, the first attempt")
	}
}

// The retry/hedge counters surface through /metrics in lint-clean
// Prometheus text, alongside the worker's session-replication families.
func TestRouterRetryHedgeMetricsLintClean(t *testing.T) {
	a := newFakeWorker(t, "a")
	b := newFakeWorker(t, "b")
	a.fail.Store(1 << 30) // a answers 500 forever; b carries the traffic
	router, err := cluster.NewRouter(cluster.RouterConfig{Workers: []string{a.srv.URL, b.srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router)
	t.Cleanup(front.Close)

	// Distinct keys spread owners across both workers, so some requests
	// start on the failing one and retry onto the healthy one.
	insts := quickInstances(t)
	for _, inst := range insts[:min(8, len(insts))] {
		status, _, resp := post(t, front.URL+"/v1/coalesce", requestBody(t, inst.File))
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, resp)
		}
	}
	if st := router.Stats(); st.Retries == 0 {
		t.Fatalf("no retries recorded against an always-500 worker: %+v", st)
	}

	status, _, metrics := get(t, front.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("router /metrics: status %d", status)
	}
	for _, family := range []string{
		"regcoal_router_retries_total",
		"regcoal_router_hedges_total",
		"regcoal_router_ready_probes_total",
	} {
		if !strings.Contains(string(metrics), family) {
			t.Fatalf("router /metrics missing %s:\n%s", family, metrics)
		}
	}
	if problems := obs.LintPrometheus(string(metrics)); len(problems) > 0 {
		t.Fatalf("router /metrics lint: %v", problems)
	}

	// A real worker's /metrics carries the session-replication families
	// and must lint clean too.
	c := startCluster(t, 2, cluster.InProcessOptions{})
	status, _, wmetrics := get(t, c.Workers[0].URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("worker /metrics: status %d", status)
	}
	for _, family := range []string{
		"regcoal_session_repl_pushes_total",
		"regcoal_session_rebuilds_total",
		"regcoal_session_replica_lag",
	} {
		if !strings.Contains(string(wmetrics), family) {
			t.Fatalf("worker /metrics missing %s:\n%s", family, wmetrics)
		}
	}
	if problems := obs.LintPrometheus(string(wmetrics)); len(problems) > 0 {
		t.Fatalf("worker /metrics lint: %v", problems)
	}
}

// Regression test for the readiness-probe thundering herd: a stale
// cache entry hit by many concurrent requests must cost at most one
// probe per peer per ReadyTTL window, not one per request.
func TestReadinessProbeCachedPerWindow(t *testing.T) {
	a := newFakeWorker(t, "a")
	b := newFakeWorker(t, "b")
	// A slow probe widens the race window: without singleflight, all 32
	// concurrent requests would find the cache stale and probe at once.
	a.readyDelay = 20 * time.Millisecond
	b.readyDelay = 20 * time.Millisecond
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Workers:  []string{a.srv.URL, b.srv.URL},
		ReadyTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(router)
	t.Cleanup(front.Close)

	body := requestBody(t, quickInstances(t)[0].File)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(front.URL+"/v1/coalesce", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	if n := a.readyz.Load(); n > 1 {
		t.Fatalf("worker a probed %d times in one ReadyTTL window, want at most 1", n)
	}
	if n := b.readyz.Load(); n > 1 {
		t.Fatalf("worker b probed %d times in one ReadyTTL window, want at most 1", n)
	}
	if total := a.readyz.Load() + b.readyz.Load(); total == 0 {
		t.Fatal("no probes at all; the readiness path did not run")
	}
	if st := router.Stats(); st.ReadyProbes != a.readyz.Load()+b.readyz.Load() {
		t.Fatalf("router counted %d probes, workers received %d", st.ReadyProbes, a.readyz.Load()+b.readyz.Load())
	}
}
