package cluster

// Session-log replication: the availability story for the delta-session
// endpoint. Sessions are primary-sticky — the worker owning base_hash
// serves every op — but each successful create/delta/close is also
// recorded as its raw request body in an op log and pushed to the other
// members of base_hash's replica set over POST /internal/session/log.
// When the primary dies, the router's retry walks to a secondary, which
// finds the session id in its replicated log but not in its live store,
// rebuilds it by replaying the log through service.ReplaySession (the
// session engine is deterministic, so the rebuilt state matches the
// uninterrupted original exactly), and serves the request as if nothing
// happened. Replication is synchronous and best-effort: a failed push
// leaves the per-peer replica-lag gauge elevated, which is the signal
// that a failover from this worker could lose recent ops.

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"regcoal/internal/service"
)

// sessionLog is one session's replicated raw op log.
type sessionLog struct {
	ID       string
	BaseHash string
	Create   json.RawMessage
	Deltas   []json.RawMessage
}

// sessionLogs is an LRU-capped store of replicated op logs, mirroring
// the session store's own eviction discipline so a replica cannot be
// made to hold logs for more sessions than it would ever serve.
type sessionLogs struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*list.Element // of *sessionLog
	ll   *list.List               // front = most recently touched
}

func newSessionLogs(capacity int) *sessionLogs {
	if capacity <= 0 {
		capacity = 256
	}
	return &sessionLogs{cap: capacity, byID: make(map[string]*list.Element), ll: list.New()}
}

// upsertCreate registers (or resets) a session's log under its create
// body.
func (sl *sessionLogs) upsertCreate(id, baseHash string, create []byte) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if el, ok := sl.byID[id]; ok {
		lg := el.Value.(*sessionLog)
		lg.BaseHash = baseHash
		lg.Create = append(json.RawMessage(nil), create...)
		lg.Deltas = nil
		sl.ll.MoveToFront(el)
		return
	}
	lg := &sessionLog{ID: id, BaseHash: baseHash, Create: append(json.RawMessage(nil), create...)}
	sl.byID[id] = sl.ll.PushFront(lg)
	for sl.ll.Len() > sl.cap {
		oldest := sl.ll.Back()
		delete(sl.byID, oldest.Value.(*sessionLog).ID)
		sl.ll.Remove(oldest)
	}
}

// appendDelta extends a known session's log; an unknown id (create
// never replicated here, or evicted) is dropped — without the create
// the tail is unreplayable anyway.
func (sl *sessionLogs) appendDelta(id string, body []byte) bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	el, ok := sl.byID[id]
	if !ok {
		return false
	}
	lg := el.Value.(*sessionLog)
	lg.Deltas = append(lg.Deltas, append(json.RawMessage(nil), body...))
	sl.ll.MoveToFront(el)
	return true
}

// drop removes a session's log (close, or post-rebuild cleanup).
func (sl *sessionLogs) drop(id string) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if el, ok := sl.byID[id]; ok {
		delete(sl.byID, id)
		sl.ll.Remove(el)
	}
}

// get returns a stable snapshot of a session's log, or nil.
func (sl *sessionLogs) get(id string) *sessionLog {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	el, ok := sl.byID[id]
	if !ok {
		return nil
	}
	lg := el.Value.(*sessionLog)
	out := &sessionLog{ID: lg.ID, BaseHash: lg.BaseHash, Create: lg.Create}
	out.Deltas = append(out.Deltas, lg.Deltas...)
	sl.ll.MoveToFront(el)
	return out
}

// all returns a stable snapshot of every log, without touching LRU
// order — the handoff engine's enumeration on a topology change.
func (sl *sessionLogs) all() []*sessionLog {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	out := make([]*sessionLog, 0, sl.ll.Len())
	for el := sl.ll.Front(); el != nil; el = el.Next() {
		lg := el.Value.(*sessionLog)
		cp := &sessionLog{ID: lg.ID, BaseHash: lg.BaseHash, Create: lg.Create}
		cp.Deltas = append(cp.Deltas, lg.Deltas...)
		out = append(out, cp)
	}
	return out
}

func (sl *sessionLogs) len() int {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.ll.Len()
}

// sessionLogOp is the replication wire format of POST
// /internal/session/log.
type sessionLogOp struct {
	// Op is "create" (Body is the create request), "append" (Body is one
	// delta request), or "delete" (session closed).
	Op        string          `json:"op"`
	SessionID string          `json:"session_id"`
	BaseHash  string          `json:"base_hash,omitempty"`
	Body      json.RawMessage `json:"body,omitempty"`
}

// captureWriter buffers a response so the worker can inspect and
// replicate it before relaying the exact bytes to the client.
type captureWriter struct {
	hdr    http.Header
	status int
	buf    bytes.Buffer
}

func newCapture() *captureWriter {
	return &captureWriter{hdr: make(http.Header), status: http.StatusOK}
}

func (c *captureWriter) Header() http.Header         { return c.hdr }
func (c *captureWriter) WriteHeader(status int)      { c.status = status }
func (c *captureWriter) Write(p []byte) (int, error) { return c.buf.Write(p) }

// copyTo relays the captured response verbatim.
func (c *captureWriter) copyTo(rw http.ResponseWriter) {
	dst := rw.Header()
	for k, vs := range c.hdr {
		dst[k] = vs
	}
	rw.WriteHeader(c.status)
	rw.Write(c.buf.Bytes())
}

// handleDelta wraps the service's session endpoint with the replication
// protocol: rebuild-before-serve for sessions this worker holds only as
// a replicated log, and log-and-push-after-success so the replica set
// stays current. The service handler sees the verbatim body and
// produces the verbatim response — replication never changes bytes.
func (w *Worker) handleDelta(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(rw, r.Body, w.svc.Config().MaxBodyBytes))
	if err != nil {
		w.writeError(rw, http.StatusBadRequest, fmt.Sprintf("reading request: %v", err))
		return
	}
	// Lenient peek purely for replication bookkeeping; the service's
	// strict decode of the same bytes is what produces the response.
	var req service.DeltaRequest
	_ = json.Unmarshal(body, &req)

	if w.topo != nil && req.SessionID != "" {
		switch req.Op {
		case "", "delta", "close":
			w.maybeRebuild(req.SessionID)
		}
	}

	rec := newCapture()
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	w.svc.Handler().ServeHTTP(rec, r2)

	// Replicate before answering: once the client has seen success, a
	// primary death must always be recoverable from a secondary's log.
	if rec.status == http.StatusOK && w.topo != nil {
		w.replicateSessionOp(&req, body, rec.buf.Bytes())
	}
	rec.copyTo(rw)
}

// maybeRebuild replays a session this worker holds as a replicated log
// but not live — the failover moment. Sessions alive locally or logs
// without a create are left alone.
func (w *Worker) maybeRebuild(id string) {
	if _, err := w.svc.Sessions().Get(id); err == nil {
		return
	}
	lg := w.sessLogs.get(id)
	if lg == nil || len(lg.Create) == 0 {
		return
	}
	if err := w.svc.ReplaySession(lg.ID, lg.BaseHash, lg.Create, byteSlices(lg.Deltas)); err != nil {
		w.rebuildFailures.Add(1)
		return
	}
	w.rebuilds.Add(1)
}

func byteSlices(raws []json.RawMessage) [][]byte {
	out := make([][]byte, len(raws))
	for i, r := range raws {
		out[i] = r
	}
	return out
}

// replicateSessionOp records a successful session op locally and pushes
// it to the other members of the base hash's replica set.
func (w *Worker) replicateSessionOp(req *service.DeltaRequest, body, respBody []byte) {
	op := req.Op
	if op == "" {
		op = "delta"
	}
	var id, baseHash string
	wireOp := ""
	switch op {
	case "create":
		var resp service.DeltaResponse
		if json.Unmarshal(respBody, &resp) != nil || resp.SessionID == "" {
			return
		}
		id, baseHash = resp.SessionID, resp.BaseHash
		w.sessLogs.upsertCreate(id, baseHash, body)
		wireOp = "create"
	case "delta":
		id = req.SessionID
		baseHash = w.sessionBaseHash(req)
		w.sessLogs.appendDelta(id, body)
		wireOp = "append"
	case "close":
		id = req.SessionID
		baseHash = req.BaseHash
		if lg := w.sessLogs.get(id); lg != nil && baseHash == "" {
			baseHash = lg.BaseHash
		}
		w.sessLogs.drop(id)
		wireOp = "delete"
	default:
		return
	}
	if id == "" || baseHash == "" {
		return
	}
	for _, peer := range w.topo.View().Ring.Replicas(baseHash, w.replicaCount()) {
		if peer == w.cfg.Self {
			continue
		}
		w.pushSessionLog(peer, wireOp, id, baseHash, body)
	}
}

// sessionBaseHash resolves a delta request's base hash: the echoed
// base_hash when present, else the live session's, else the log's.
func (w *Worker) sessionBaseHash(req *service.DeltaRequest) string {
	if req.BaseHash != "" {
		return req.BaseHash
	}
	if sess, err := w.svc.Sessions().Get(req.SessionID); err == nil {
		return sess.BaseHash()
	}
	if lg := w.sessLogs.get(req.SessionID); lg != nil {
		return lg.BaseHash
	}
	return ""
}

// pushSessionLog sends one op-log record to a replica. The per-peer lag
// gauge rises before the push and falls only on success, so a replica
// that is down reads as persistent lag until the next successful push
// sequence catches it up (or the session closes).
func (w *Worker) pushSessionLog(peer, op, id, baseHash string, body []byte) {
	lag := w.lagFor(peer)
	lag.Add(1)
	payload, err := json.Marshal(sessionLogOp{Op: op, SessionID: id, BaseHash: baseHash, Body: body})
	if err != nil {
		w.replFailures.Add(1)
		return
	}
	resp, err := w.doEpochRequest(peer, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, peer+"/internal/session/log", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		w.replFailures.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		w.replFailures.Add(1)
		return
	}
	w.replPushes.Add(1)
	lag.Add(-1)
}

// handleInternalSessionLog is the replication wire: a peer pushes one
// op-log record for a session whose replica set includes this worker.
func (w *Worker) handleInternalSessionLog(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.writeError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if !w.checkEpoch(rw, r) {
		return
	}
	var op sessionLogOp
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, w.svc.Config().MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&op); err != nil {
		w.writeError(rw, http.StatusBadRequest, fmt.Sprintf("decoding log op: %v", err))
		return
	}
	if op.SessionID == "" {
		w.writeError(rw, http.StatusBadRequest, "missing session_id")
		return
	}
	switch op.Op {
	case "create":
		w.sessLogs.upsertCreate(op.SessionID, op.BaseHash, op.Body)
	case "append":
		w.sessLogs.appendDelta(op.SessionID, op.Body)
	case "delete":
		w.sessLogs.drop(op.SessionID)
	default:
		w.writeError(rw, http.StatusBadRequest, fmt.Sprintf("unknown log op %q", op.Op))
		return
	}
	rw.WriteHeader(http.StatusNoContent)
}
