package cluster

import "runtime"

// Admission is the worker's two-lane admission controller. Instances are
// classified by size class — vertex count and edge density — into a fast
// lane (small/sparse graphs whose portfolio race finishes in microseconds
// to low milliseconds) and a bounded heavy lane (large or dense graphs
// that can hold pool workers for a whole deadline). Each lane is a
// semaphore with its own depth; a full lane rejects with 429 instead of
// letting heavy instances queue behind — or starve — the fast path.
//
// Cache hits bypass admission entirely: the lanes guard compute, not
// memory reads.
type Admission struct {
	cfg   AdmissionConfig
	fast  chan struct{}
	heavy chan struct{}
}

// AdmissionConfig parameterizes the lanes. Zero values take defaults.
type AdmissionConfig struct {
	// FastSlots bounds concurrently admitted fast-lane solves (default
	// 8 × GOMAXPROCS: fast instances mostly wait in the pool queue, so the
	// lane is wide and the pool's own 429 backstop still applies).
	FastSlots int
	// HeavySlots bounds concurrently admitted heavy-lane solves (default
	// 2): at most this many expensive races occupy the pool at once.
	HeavySlots int
	// HeavyVertices classifies an instance heavy by size alone (default
	// 20000 vertices).
	HeavyVertices int
	// HeavyScore classifies an instance heavy when vertices × density
	// reaches it (default 512 — e.g. 2048 vertices at 25% density).
	HeavyScore float64
}

func (c *AdmissionConfig) fillDefaults() {
	if c.FastSlots <= 0 {
		c.FastSlots = 8 * runtime.GOMAXPROCS(0)
	}
	if c.HeavySlots <= 0 {
		c.HeavySlots = 2
	}
	if c.HeavyVertices <= 0 {
		c.HeavyVertices = 20000
	}
	if c.HeavyScore <= 0 {
		c.HeavyScore = 512
	}
}

// Lane identifies an admission lane.
type Lane int

const (
	LaneFast Lane = iota
	LaneHeavy
)

func (l Lane) String() string {
	if l == LaneHeavy {
		return "heavy"
	}
	return "fast"
}

// NewAdmission builds the controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	cfg.fillDefaults()
	return &Admission{
		cfg:   cfg,
		fast:  make(chan struct{}, cfg.FastSlots),
		heavy: make(chan struct{}, cfg.HeavySlots),
	}
}

// Classify buckets an instance by size class.
func (a *Admission) Classify(vertices int, density float64) Lane {
	if vertices >= a.cfg.HeavyVertices || float64(vertices)*density >= a.cfg.HeavyScore {
		return LaneHeavy
	}
	return LaneFast
}

// TryAcquire claims a slot in the lane without blocking; false means the
// lane is full and the request should be rejected with 429.
func (a *Admission) TryAcquire(l Lane) bool {
	select {
	case a.lane(l) <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (a *Admission) Release(l Lane) { <-a.lane(l) }

// Depth reports the lane's current occupancy.
func (a *Admission) Depth(l Lane) int { return len(a.lane(l)) }

// Slots reports the lane's capacity.
func (a *Admission) Slots(l Lane) int { return cap(a.lane(l)) }

func (a *Admission) lane(l Lane) chan struct{} {
	if l == LaneHeavy {
		return a.heavy
	}
	return a.fast
}
