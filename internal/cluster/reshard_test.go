package cluster_test

// Live-membership tests: epoch-versioned topology updates through the
// router's admin endpoint, the stale-epoch 409 exchange, cache handoff
// on reshard, and session migration. The acceptance bar is the same as
// every other cluster test: under add/remove/re-add churn with live
// traffic, the cluster answers bytes identical to a single-node service,
// and clients never see a 5xx.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"regcoal/internal/cluster"
	"regcoal/internal/faultinject"
	"regcoal/internal/obs"
	"regcoal/internal/service"
	"regcoal/internal/session"
)

// waitHandoffs blocks until no worker has a handoff streaming.
func waitHandoffs(t *testing.T, c *cluster.InProcess) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, w := range c.Workers {
		if err := w.Worker.HandoffWait(ctx); err != nil {
			t.Fatalf("handoff on %s: %v", w.URL, err)
		}
	}
}

func TestTopologyAdminAPI(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{})

	// GET returns the initial view at epoch 1.
	resp, err := http.Get(c.RouterURL + "/internal/topology")
	if err != nil {
		t.Fatal(err)
	}
	var wire cluster.TopologyWire
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if wire.Epoch != 1 || len(wire.Nodes) != 2 {
		t.Fatalf("initial view %+v", wire)
	}

	// A CAS against the wrong epoch is a structured 409 carrying the
	// current view — the rejection is the ring refetch.
	body, _ := json.Marshal(map[string]any{"from_epoch": 99, "nodes": wire.Nodes})
	status, _, respBody := post(t, c.RouterURL+"/internal/topology", body)
	if status != http.StatusConflict {
		t.Fatalf("stale CAS: status %d: %s", status, respBody)
	}
	var stale struct {
		Error    string               `json:"error"`
		Have     uint64               `json:"have"`
		Got      uint64               `json:"got"`
		Topology cluster.TopologyWire `json:"topology"`
	}
	if err := json.Unmarshal(respBody, &stale); err != nil {
		t.Fatalf("409 body not structured: %s", respBody)
	}
	if stale.Have != 1 || stale.Got != 99 || stale.Topology.Epoch != 1 {
		t.Fatalf("409 payload %+v", stale)
	}

	// Empty and self-emptying updates are 400s, not topology changes.
	for _, bad := range []string{`{}`, fmt.Sprintf(`{"remove":[%q,%q]}`, wire.Nodes[0], wire.Nodes[1])} {
		status, _, respBody = post(t, c.RouterURL+"/internal/topology", []byte(bad))
		if status != http.StatusBadRequest {
			t.Fatalf("update %s: status %d: %s", bad, status, respBody)
		}
	}

	// A valid add bumps the epoch and the broadcast is adopted by every
	// worker before the update returns.
	w3, err := c.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	next, err := c.UpdateTopology([]string{w3.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 2 || len(next.Nodes) != 3 {
		t.Fatalf("post-add view %+v", next)
	}
	for _, w := range c.Workers {
		if got := w.Worker.Stats().Epoch; got != 2 {
			t.Fatalf("worker %s at epoch %d after broadcast, want 2", w.URL, got)
		}
	}
	if got := c.Router.Stats().Epoch; got != 2 {
		t.Fatalf("router at epoch %d, want 2", got)
	}
}

func TestStaleEpochRejectedOnInternalRPC(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{})

	req, err := http.NewRequest(http.MethodPost, c.Workers[0].URL+"/internal/session/import",
		bytes.NewReader([]byte(`{"session_id":"s-x","base_hash":"h","version":0,"create":{}}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.EpochHeader, "99")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch RPC: status %d", resp.StatusCode)
	}
	var stale struct {
		Have     uint64               `json:"have"`
		Got      uint64               `json:"got"`
		Topology cluster.TopologyWire `json:"topology"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stale); err != nil {
		t.Fatal(err)
	}
	if stale.Have != 1 || stale.Got != 99 || len(stale.Topology.Nodes) != 2 {
		t.Fatalf("409 payload %+v", stale)
	}
	if rejects := c.Workers[0].Worker.Stats().EpochRejects; rejects != 1 {
		t.Fatalf("epoch_rejects = %d, want 1", rejects)
	}
}

func TestReadinessCacheInvalidatedOnEpochChange(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{
		Router: cluster.RouterConfig{ReadyTTL: time.Minute},
	})
	insts := quickInstances(t)
	body := requestBody(t, insts[0].File)

	status, _, resp := post(t, c.RouterURL+"/v1/coalesce", body)
	if status != http.StatusOK {
		t.Fatalf("solve: status %d: %s", status, resp)
	}
	probed := c.Router.Stats().ReadyProbes
	if probed == 0 {
		t.Fatal("first forward issued no readiness probe")
	}
	// Within the TTL the cache answers; no new probes.
	post(t, c.RouterURL+"/v1/coalesce", body)
	if got := c.Router.Stats().ReadyProbes; got != probed {
		t.Fatalf("probes %d -> %d inside TTL window", probed, got)
	}
	// An epoch bump (full-set replacement with the same nodes) must drop
	// the cached probes: membership moved, staleness is not acceptable.
	nodes := c.Router.Topology().View().Nodes
	upd, _ := json.Marshal(map[string]any{"nodes": nodes})
	status, _, resp = post(t, c.RouterURL+"/internal/topology", upd)
	if status != http.StatusOK {
		t.Fatalf("topology update: status %d: %s", status, resp)
	}
	post(t, c.RouterURL+"/v1/coalesce", body)
	if got := c.Router.Stats().ReadyProbes; got <= probed {
		t.Fatalf("probes stayed at %d after epoch change; cache not invalidated", got)
	}
}

func TestRingNodesReturnsCopy(t *testing.T) {
	ring := cluster.NewRing([]string{"http://a", "http://b"}, 0)
	nodes := ring.Nodes()
	nodes[0] = "http://mutated"
	if again := ring.Nodes(); again[0] != "http://a" {
		t.Fatalf("Ring.Nodes leaked internal state: %v", again)
	}
}

// The tentpole differential: a 2-node cluster under continuous live load
// (solves plus a delta session) goes through add -> remove -> re-add of
// a third worker. Every response during and after the churn must be
// byte-identical to an undisturbed single-node service, no client may
// see a 5xx, the epoch must advance once per edit, and the reshard must
// actually stream cache entries to the new owners.
func TestReshardChurnDifferentialByteIdentical(t *testing.T) {
	scfg := service.Config{Workers: 2, QueueCap: 128}
	_, single := startSingle(t, scfg)
	c := startCluster(t, 2, cluster.InProcessOptions{Service: scfg})

	insts := quickInstances(t)
	if len(insts) > 8 {
		insts = insts[:8]
	}
	bodies := make([][]byte, len(insts))
	want := make([][]byte, len(insts))
	for i, inst := range insts {
		bodies[i] = requestBody(t, inst.File)
		status, _, resp := post(t, single.URL+"/v1/coalesce", bodies[i])
		if status != http.StatusOK {
			t.Fatalf("single-node reference %d: status %d: %s", i, status, resp)
		}
		want[i] = resp
	}
	// Warm the cluster's caches so the reshard has entries to hand off.
	for i := range bodies {
		status, _, resp := post(t, c.RouterURL+"/v1/coalesce", bodies[i])
		if status != http.StatusOK {
			t.Fatalf("warmup %d: status %d: %s", i, status, resp)
		}
		if !bytes.Equal(resp, want[i]) {
			t.Fatalf("warmup %d: cluster differs from single-node:\n%s\n%s", i, resp, want[i])
		}
	}

	// One delta session, created on both sides. Session ids are minted
	// per store (clock-seeded), so the two sides carry different ids:
	// byte-identity is asserted modulo each side's own id.
	spec := &service.GraphSpec{Vertices: 8, K: 3}
	for v := 1; v < spec.Vertices; v++ {
		spec.Edges = append(spec.Edges, [2]int{v - 1, v})
	}
	spec.Moves = append(spec.Moves, service.Move{X: 0, Y: 7, Weight: 11})
	createBody, _ := json.Marshal(service.DeltaRequest{Op: "create", Graph: spec})
	var singleSess, clusterSess service.DeltaResponse
	sessionStep := func(step string, singleBody, clusterBody []byte) {
		t.Helper()
		wantStatus, _, wantResp := post(t, single.URL+"/v1/coalesce/delta", singleBody)
		gotStatus, _, gotResp := post(t, c.RouterURL+"/v1/coalesce/delta", clusterBody)
		if wantStatus != http.StatusOK || gotStatus != wantStatus {
			t.Fatalf("%s: single %d cluster %d: %s / %s", step, wantStatus, gotStatus, wantResp, gotResp)
		}
		wantNorm := bytes.ReplaceAll(wantResp, []byte(singleSess.SessionID), []byte("<sid>"))
		gotNorm := bytes.ReplaceAll(gotResp, []byte(clusterSess.SessionID), []byte("<sid>"))
		if !bytes.Equal(gotNorm, wantNorm) {
			t.Fatalf("%s: cluster differs from single-node:\n%s\n%s", step, gotNorm, wantNorm)
		}
	}
	wantStatus, _, wantResp := post(t, single.URL+"/v1/coalesce/delta", createBody)
	gotStatus, _, gotResp := post(t, c.RouterURL+"/v1/coalesce/delta", createBody)
	if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
		t.Fatalf("create: single %d cluster %d: %s / %s", wantStatus, gotStatus, wantResp, gotResp)
	}
	if err := json.Unmarshal(wantResp, &singleSess); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gotResp, &clusterSess); err != nil {
		t.Fatal(err)
	}
	if singleSess.BaseHash != clusterSess.BaseHash {
		t.Fatalf("base hash diverged at create: %s vs %s", singleSess.BaseHash, clusterSess.BaseHash)
	}
	if want, got := bytes.ReplaceAll(wantResp, []byte(singleSess.SessionID), []byte("<sid>")),
		bytes.ReplaceAll(gotResp, []byte(clusterSess.SessionID), []byte("<sid>")); !bytes.Equal(got, want) {
		t.Fatalf("create: cluster differs from single-node:\n%s\n%s", got, want)
	}
	deltaBodies := func(version int64) (singleBody, clusterBody []byte) {
		mk := func(s *service.DeltaResponse) []byte {
			v := version
			b, _ := json.Marshal(service.DeltaRequest{
				SessionID: s.SessionID, BaseHash: s.BaseHash, Version: &v,
				Deltas: []session.Delta{{Op: session.OpAddVertex}},
			})
			return b
		}
		return mk(&singleSess), mk(&clusterSess)
	}
	sb, cb := deltaBodies(0)
	sessionStep("delta 0", sb, cb)
	sb, cb = deltaBodies(1)
	sessionStep("delta 1", sb, cb)

	// Live load against the router for the whole churn.
	var (
		served     atomic.Int64
		serverErrs atomic.Int64
		loadMu     sync.Mutex
		loadErr    error
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; ; i = (i + 1) % len(bodies) {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(c.RouterURL+"/v1/coalesce", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = err
					}
					loadMu.Unlock()
					return
				}
				data := make([]byte, 0, len(want[i]))
				buf := bytes.NewBuffer(data)
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				served.Add(1)
				if resp.StatusCode >= http.StatusInternalServerError {
					serverErrs.Add(1)
				}
				if resp.StatusCode == http.StatusOK && !bytes.Equal(buf.Bytes(), want[i]) {
					loadMu.Lock()
					if loadErr == nil {
						loadErr = fmt.Errorf("instance %d: cluster bytes diverged under churn", i)
					}
					loadMu.Unlock()
					return
				}
			}
		}(g)
	}

	// add -> remove -> re-add, waiting out each handoff.
	w3, err := c.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	for step, edit := range []struct{ add, remove []string }{
		{add: []string{w3.URL}},
		{remove: []string{w3.URL}},
		{add: []string{w3.URL}},
	} {
		wire, err := c.UpdateTopology(edit.add, edit.remove)
		if err != nil {
			t.Fatalf("churn step %d: %v", step, err)
		}
		if wire.Epoch != uint64(2+step) {
			t.Fatalf("churn step %d installed epoch %d, want %d", step, wire.Epoch, 2+step)
		}
		waitHandoffs(t, c)
	}
	close(stop)
	wg.Wait()
	if loadErr != nil {
		t.Fatal(loadErr)
	}
	if served.Load() == 0 {
		t.Fatal("live load served no requests during the churn")
	}
	if errs := serverErrs.Load(); errs != 0 {
		t.Fatalf("%d client-visible 5xx during churn, want 0 (%d served)", errs, served.Load())
	}

	// The reshard actually moved cache state.
	var handoffEntries, handoffRounds int64
	for _, w := range c.Workers {
		st := w.Worker.Stats()
		handoffEntries += st.HandoffEntries
		handoffRounds += st.HandoffRounds
	}
	if handoffRounds == 0 {
		t.Fatal("no worker ran a handoff round across three topology changes")
	}
	if handoffEntries == 0 {
		t.Fatal("handoff streamed zero cache entries across three topology changes")
	}
	if got := c.Router.Topology().Epoch(); got != 4 {
		t.Fatalf("router epoch %d after three edits, want 4", got)
	}
	for _, w := range c.Workers {
		if got := w.Worker.Stats().Epoch; got != 4 {
			t.Fatalf("worker %s at epoch %d, want 4", w.URL, got)
		}
	}

	// The session resumed across the reshard answers byte-identically at
	// the same id and version, wherever it lives now.
	sb, cb = deltaBodies(2)
	sessionStep("post-churn delta 2", sb, cb)
	sb, cb = deltaBodies(3)
	sessionStep("post-churn delta 3", sb, cb)
	closeSingle, _ := json.Marshal(service.DeltaRequest{
		Op: "close", SessionID: singleSess.SessionID, BaseHash: singleSess.BaseHash})
	closeCluster, _ := json.Marshal(service.DeltaRequest{
		Op: "close", SessionID: clusterSess.SessionID, BaseHash: clusterSess.BaseHash})
	sessionStep("close", closeSingle, closeCluster)

	// Post-reshard reads find warm caches: with every key already solved
	// and handed off, re-posting the corpus hits rather than recomputes.
	hits := 0
	for i := range bodies {
		status, hdr, resp := post(t, c.RouterURL+"/v1/coalesce", bodies[i])
		if status != http.StatusOK {
			t.Fatalf("post-churn read %d: status %d: %s", i, status, resp)
		}
		if !bytes.Equal(resp, want[i]) {
			t.Fatalf("post-churn read %d differs from single-node", i)
		}
		if hdr.Get("X-Regcoal-Cache") == "hit" {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no cache hits after reshard; handoff left every owner cold")
	}
}

// Kill a worker in the middle of its handoff window, with a fixed-seed
// fault plan dropping early internal cache/session pushes: the cluster
// must converge — clients still read byte-identical 200s — because
// reads fall back to surviving owners and recompute on a cold miss.
func TestKillDuringHandoffConverges(t *testing.T) {
	scfg := service.Config{Workers: 2, QueueCap: 128}
	_, single := startSingle(t, scfg)
	plan := &faultinject.Plan{
		Seed: 20070311,
		Rules: []faultinject.Rule{
			// Drop the first two internal cache/session pushes to every
			// peer from every component: the handoff stream and peer
			// fills start lossy and must retry or eat the miss.
			{Peer: "*", Mode: faultinject.ModeDrop, Side: faultinject.SideClient,
				Paths: []string{"/internal/cache", "/internal/session"}, From: 0, To: 2},
		},
	}
	c := startCluster(t, 3, cluster.InProcessOptions{Service: scfg, Fault: plan})

	insts := quickInstances(t)
	if len(insts) > 8 {
		insts = insts[:8]
	}
	bodies := make([][]byte, len(insts))
	want := make([][]byte, len(insts))
	for i, inst := range insts {
		bodies[i] = requestBody(t, inst.File)
		status, _, resp := post(t, single.URL+"/v1/coalesce", bodies[i])
		if status != http.StatusOK {
			t.Fatalf("single-node reference %d: status %d", i, status)
		}
		want[i] = resp
		status, _, resp = post(t, c.RouterURL+"/v1/coalesce", bodies[i])
		if status != http.StatusOK {
			t.Fatalf("warmup %d: status %d: %s", i, status, resp)
		}
		if !bytes.Equal(resp, want[i]) {
			t.Fatalf("warmup %d differs from single-node", i)
		}
	}

	// Remove the third worker and kill it before its handoff can finish:
	// the stream sources die mid-flight.
	victim := c.Workers[2]
	if _, err := c.UpdateTopology(nil, []string{victim.URL}); err != nil {
		t.Fatal(err)
	}
	if err := c.StopWorker(2); err != nil {
		t.Fatal(err)
	}

	// Every read still answers 200 with single-node bytes: surviving
	// owners serve from their own or handed-off cache, or recompute.
	for i := range bodies {
		status, _, resp := post(t, c.RouterURL+"/v1/coalesce", bodies[i])
		if status != http.StatusOK {
			t.Fatalf("post-kill read %d: status %d: %s", i, status, resp)
		}
		if !bytes.Equal(resp, want[i]) {
			t.Fatalf("post-kill read %d differs from single-node", i)
		}
	}
	if got := c.Router.Topology().Epoch(); got != 2 {
		t.Fatalf("router epoch %d, want 2", got)
	}
	rounds := int64(0)
	for _, w := range c.Workers[:2] {
		rounds += w.Worker.Stats().HandoffRounds
	}
	if rounds == 0 {
		t.Fatal("no surviving worker ran a handoff round")
	}
}

// After a reshard, the handoff/epoch/migration metric families are
// present on both tiers and the whole exposition passes the strict
// Prometheus linter.
func TestReshardMetricsLintClean(t *testing.T) {
	c := startCluster(t, 2, cluster.InProcessOptions{})
	insts := quickInstances(t)
	for i := 0; i < 4; i++ {
		post(t, c.RouterURL+"/v1/coalesce", requestBody(t, insts[i].File))
	}
	w3, err := c.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UpdateTopology([]string{w3.URL}, nil); err != nil {
		t.Fatal(err)
	}
	waitHandoffs(t, c)

	fetch := func(url string) string {
		t.Helper()
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String()
	}
	rm := fetch(c.RouterURL)
	for _, family := range []string{
		"regcoal_topology_epoch 2",
		"regcoal_router_topology_updates_total 1",
		"regcoal_router_topology_broadcast_failures_total",
	} {
		if !bytes.Contains([]byte(rm), []byte(family)) {
			t.Fatalf("router metrics missing %q:\n%s", family, rm)
		}
	}
	if problems := obs.LintPrometheus(rm); len(problems) > 0 {
		t.Fatalf("router metrics lint: %v", problems)
	}
	for _, w := range c.Workers {
		wm := fetch(w.URL)
		for _, family := range []string{
			"regcoal_topology_epoch 2",
			"regcoal_epoch_rejects_total",
			"regcoal_epoch_adoptions_total",
			"regcoal_handoff_entries_total",
			"regcoal_handoff_bytes_total",
			"regcoal_handoff_sessions_total",
			"regcoal_handoff_errors_total",
			"regcoal_handoff_rounds_total",
			"regcoal_handoff_active",
			"regcoal_session_imports_total",
			"regcoal_session_import_failures_total",
		} {
			if !bytes.Contains([]byte(wm), []byte(family)) {
				t.Fatalf("worker %s metrics missing %q", w.URL, family)
			}
		}
		if problems := obs.LintPrometheus(wm); len(problems) > 0 {
			t.Fatalf("worker %s metrics lint: %v", w.URL, problems)
		}
	}
}

// FuzzImportSession throws arbitrary bytes at the migration import
// endpoint: malformed records, truncated or duplicated op logs, and
// wire-format mutations must come back as structured 4xx (or the
// idempotent 409) — never a 5xx, never a panic.
func FuzzImportSession(f *testing.F) {
	scfg := service.Config{Workers: 1, QueueCap: 16}
	c, err := cluster.StartInProcess(1, cluster.InProcessOptions{Service: scfg})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(c.Close)
	target := c.Workers[0].URL + "/internal/session/import"

	spec := `{"vertices":4,"k":3,"edges":[[0,1],[1,2]]}`
	create := fmt.Sprintf(`{"op":"create","graph":%s}`, spec)
	delta := `{"deltas":[{"op":"add_vertex"}]}`
	f.Add([]byte(fmt.Sprintf(`{"session_id":"s-1","base_hash":"h","version":0,"create":%s}`, create)))
	f.Add([]byte(fmt.Sprintf(`{"session_id":"s-2","base_hash":"h","version":1,"create":%s,"deltas":[%s]}`, create, delta)))
	// Truncated log: version says 2, one delta present.
	f.Add([]byte(fmt.Sprintf(`{"session_id":"s-3","base_hash":"h","version":2,"create":%s,"deltas":[%s]}`, create, delta)))
	// Duplicated log: version says 1, two deltas present.
	f.Add([]byte(fmt.Sprintf(`{"session_id":"s-4","base_hash":"h","version":1,"create":%s,"deltas":[%s,%s]}`, create, delta, delta)))
	f.Add([]byte(`{"session_id":"","version":-9,"create":{}}`))
	f.Add([]byte(`{"session_id":"s-5","unknown_field":true}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := http.Post(target, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= http.StatusInternalServerError {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			t.Fatalf("import answered %d for %q: %s", resp.StatusCode, data, buf.Bytes())
		}
	})
}
