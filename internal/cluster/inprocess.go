package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"regcoal/internal/faultinject"
	"regcoal/internal/service"
)

// InProcess is a whole cluster — N workers plus a router — running on
// loopback listeners inside one process. It is the topology used by the
// differential tests, the CI smoke job, and the cluster bench scenario:
// real HTTP over real sockets, but no process management.
type InProcess struct {
	Router    *Router
	RouterURL string
	Workers   []*InProcessWorker

	// RouterInjector is the router's fault injector (nil without a plan):
	// it decides the fate of router→worker requests.
	RouterInjector *faultinject.Injector

	servers   []*http.Server // one per worker, same index as Workers
	routerSrv *http.Server
	opts      InProcessOptions
	urls      []string // every worker URL ever launched, for fault naming
}

// InProcessWorker is one running shard.
type InProcessWorker struct {
	Service *service.Server
	Worker  *Worker
	URL     string
	// Injector is this worker's fault injector (nil without a plan): it
	// decides server-side faults on the worker's own solve endpoints and
	// client-side faults on its peer traffic.
	Injector *faultinject.Injector
}

// InProcessOptions shape the topology.
type InProcessOptions struct {
	// Service configures each worker's service (each worker gets its own
	// pool and cache).
	Service service.Config
	// Worker configures the shard layer; Self and Peers are filled in.
	Worker WorkerConfig
	// Router configures the front door; Workers is filled in.
	Router RouterConfig
	// Fault, when set, arms deterministic fault injection across the
	// topology. Worker i is peer "w<i>" in the plan's rules. Each
	// component holds its own Injector over the same plan, so request
	// counters advance per side per component — exactly the isolation a
	// real deployment (one injector per process) would have.
	Fault *faultinject.Plan
}

// StartInProcess launches n workers and a router on loopback. Callers
// must Close the result.
func StartInProcess(n int, opts InProcessOptions) (*InProcess, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", n)
	}
	c := &InProcess{opts: opts}
	fail := func(err error) (*InProcess, error) {
		c.Close()
		return nil, err
	}

	// Listeners first: every worker needs the full peer URL list before
	// its Worker can be constructed.
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return fail(fmt.Errorf("cluster: listen: %w", err))
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	c.urls = append(c.urls, urls...)

	var namer func(*http.Request) string
	if opts.Fault != nil {
		namer = faultinject.NameMap(urls)
	}

	for i := 0; i < n; i++ {
		svc, err := service.New(opts.Service)
		if err != nil {
			for _, l := range listeners[i:] {
				l.Close()
			}
			return fail(err)
		}
		wcfg := opts.Worker
		wcfg.Self = urls[i]
		wcfg.Peers = urls
		var inj *faultinject.Injector
		if opts.Fault != nil {
			inj = faultinject.New(opts.Fault)
			wcfg.Client = &http.Client{
				Timeout:   2 * time.Second,
				Transport: inj.Transport(nil, namer),
			}
		}
		w, err := NewWorker(svc, wcfg)
		if err != nil {
			svc.Close()
			for _, l := range listeners[i:] {
				l.Close()
			}
			return fail(err)
		}
		var handler http.Handler = w
		if inj != nil {
			handler = inj.Middleware(fmt.Sprintf("w%d", i), handler)
		}
		node := &InProcessWorker{Service: svc, Worker: w, URL: urls[i], Injector: inj}
		srv := &http.Server{Handler: handler}
		go srv.Serve(listeners[i])
		c.Workers = append(c.Workers, node)
		c.servers = append(c.servers, srv)
	}

	rcfg := opts.Router
	rcfg.Workers = urls
	rcfg.MaxVertices = firstPositive(rcfg.MaxVertices, c.Workers[0].Service.Config().MaxVertices)
	rcfg.MaxBatch = firstPositive(rcfg.MaxBatch, c.Workers[0].Service.Config().MaxBatch)
	if rcfg.VNodes == 0 {
		rcfg.VNodes = opts.Worker.VNodes
	}
	if rcfg.Replicas == 0 {
		rcfg.Replicas = opts.Worker.Replicas
	}
	if opts.Fault != nil {
		c.RouterInjector = faultinject.New(opts.Fault)
		rcfg.Client = &http.Client{
			Timeout:   60 * time.Second,
			Transport: c.RouterInjector.Transport(nil, namer),
		}
	}
	router, err := NewRouter(rcfg)
	if err != nil {
		return fail(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail(fmt.Errorf("cluster: listen: %w", err))
	}
	srv := &http.Server{Handler: router}
	go srv.Serve(ln)
	c.Router = router
	c.RouterURL = "http://" + ln.Addr().String()
	c.routerSrv = srv
	return c, nil
}

// AddWorker launches one more worker on loopback and returns it. The new
// worker starts from the router's current node set plus itself (at epoch
// 1 — its first internal RPC or the join broadcast reconciles it), but
// joining the serving rotation is a separate, explicit step: call
// UpdateTopology(add=[w.URL]) to announce it, exactly as `serve -join`
// does. Fault plans name the new worker "w<n>" in launch order.
func (c *InProcess) AddWorker() (*InProcessWorker, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	url := "http://" + ln.Addr().String()
	svc, err := service.New(c.opts.Service)
	if err != nil {
		ln.Close()
		return nil, err
	}
	wcfg := c.opts.Worker
	wcfg.Self = url
	wcfg.Peers = append(append([]string(nil), c.Router.Topology().View().Nodes...), url)
	c.urls = append(c.urls, url)
	var inj *faultinject.Injector
	if c.opts.Fault != nil {
		inj = faultinject.New(c.opts.Fault)
		wcfg.Client = &http.Client{
			Timeout:   2 * time.Second,
			Transport: inj.Transport(nil, faultinject.NameMap(c.urls)),
		}
	}
	w, err := NewWorker(svc, wcfg)
	if err != nil {
		svc.Close()
		ln.Close()
		return nil, err
	}
	var handler http.Handler = w
	if inj != nil {
		handler = inj.Middleware(fmt.Sprintf("w%d", len(c.Workers)), handler)
	}
	node := &InProcessWorker{Service: svc, Worker: w, URL: url, Injector: inj}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	c.Workers = append(c.Workers, node)
	c.servers = append(c.servers, srv)
	return node, nil
}

// UpdateTopology applies an add/remove membership edit through the
// router's admin endpoint — the same wire a deployment would POST — and
// returns the installed view.
func (c *InProcess) UpdateTopology(add, remove []string) (TopologyWire, error) {
	return postTopologyUpdate(http.DefaultClient, c.RouterURL, topologyUpdate{Add: add, Remove: remove})
}

func firstPositive(vals ...int) int {
	for _, v := range vals {
		if v > 0 {
			return v
		}
	}
	return 0
}

// StopWorker kills worker i's listener immediately — a simulated crash,
// not a drain: in-flight requests are cut, no readiness flip, no
// goodbye. The router discovers the death through connection errors and
// fails the worker's ranges over to the next replica.
func (c *InProcess) StopWorker(i int) error {
	if i < 0 || i >= len(c.Workers) {
		return fmt.Errorf("cluster: no worker %d", i)
	}
	return c.servers[i].Close()
}

// Drain gracefully quiesces every worker: stop advertising readiness,
// wait for in-flight requests (bounded by ctx).
func (c *InProcess) Drain(ctx context.Context) error {
	for _, w := range c.Workers {
		if err := w.Service.Drain(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the listeners down and closes every service.
func (c *InProcess) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range c.servers {
		srv.Shutdown(ctx)
	}
	if c.routerSrv != nil {
		c.routerSrv.Shutdown(ctx)
	}
	for _, w := range c.Workers {
		w.Service.Close()
	}
}
