package cluster_test

// Property tests for replica-set derivation. The replica set of a key is
// the first R distinct nodes of its ring sequence, so three properties
// must hold by construction: the owners are distinct and led by the
// primary, the set is a pure function of the node *set* (construction
// order must not matter), and removing one node reassigns only the
// ranges that node carried — every other key's sequence is unchanged
// except for the victim disappearing from it.

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"regcoal/internal/cluster"
)

func TestReplicaSetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(16)
		r := 1 + rng.Intn(4)
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("http://node-%d-%d:8080", trial, i)
		}
		ring := cluster.NewRing(nodes, 0)

		shuffled := append([]string(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		ringShuffled := cluster.NewRing(shuffled, 0)

		victim := nodes[rng.Intn(n)]
		remaining := slices.DeleteFunc(append([]string(nil), nodes...), func(s string) bool { return s == victim })
		ringWithout := cluster.NewRing(remaining, 0)

		for k := 0; k < 64; k++ {
			key := fmt.Sprintf("key-%d-%d", trial, k)

			reps := ring.Replicas(key, r)
			if want := min(r, n); len(reps) != want {
				t.Fatalf("trial %d: %d nodes, R=%d: replica set has %d members, want %d", trial, n, r, len(reps), want)
			}
			if reps[0] != ring.Owner(key) {
				t.Fatalf("trial %d: replica set %v not led by owner %s", trial, reps, ring.Owner(key))
			}
			for i, a := range reps {
				for _, b := range reps[i+1:] {
					if a == b {
						t.Fatalf("trial %d: duplicate owner %s in replica set %v", trial, a, reps)
					}
				}
			}

			// Ownership is a function of the node set, not its order.
			if got := ringShuffled.Replicas(key, r); !slices.Equal(got, reps) {
				t.Fatalf("trial %d: shuffled construction changed replica set: %v vs %v", trial, got, reps)
			}

			// Minimal movement: the survivors' relative sequence is
			// untouched by removing one node — only the victim's slots
			// shift, which keeps both primaries and standby order stable
			// across single-node failures.
			seq := ring.Sequence(key)
			want := slices.DeleteFunc(append([]string(nil), seq...), func(s string) bool { return s == victim })
			if got := ringWithout.Sequence(key); !slices.Equal(got, want) {
				t.Fatalf("trial %d: removing %s reshuffled the sequence:\nwith:    %v\nwithout: %v\nwant:    %v",
					trial, victim, seq, got, want)
			}
		}
	}
}
