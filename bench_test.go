package regcoal

// One benchmark per experiment of DESIGN.md §3 — each regenerates its
// EXPERIMENTS.md table in quick mode — plus scaling benchmarks that exhibit
// the complexity-theoretic shape of the paper's results: the polynomial
// special cases against the exponential exact solvers.

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"regcoal/internal/chordal"
	"regcoal/internal/coalesce"
	"regcoal/internal/corpus"
	"regcoal/internal/engine"
	"regcoal/internal/exact"
	"regcoal/internal/expt"
	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := expt.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := expt.Config{Seed: 20060408, Quick: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := expt.RunAndRender(io.Discard, e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Experiment benchmarks: EXP ids from DESIGN.md §3.

func BenchmarkT1SSAChordal(b *testing.B)          { benchExperiment(b, "T1") }
func BenchmarkP1ChordalGreedy(b *testing.B)       { benchExperiment(b, "P1") }
func BenchmarkP2CliqueLift(b *testing.B)          { benchExperiment(b, "P2") }
func BenchmarkT2AggressiveReduction(b *testing.B) { benchExperiment(b, "T2") }
func BenchmarkT3ConservativeReduction(b *testing.B) {
	benchExperiment(b, "T3")
}
func BenchmarkF3LocalRules(b *testing.B)           { benchExperiment(b, "F3") }
func BenchmarkT4IncrementalReduction(b *testing.B) { benchExperiment(b, "T4") }
func BenchmarkT5ChordalIncremental(b *testing.B)   { benchExperiment(b, "T5") }
func BenchmarkT6OptimisticReduction(b *testing.B)  { benchExperiment(b, "T6") }
func BenchmarkChallengeStrategies(b *testing.B)    { benchExperiment(b, "CH") }
func BenchmarkIRCEndToEnd(b *testing.B)            { benchExperiment(b, "IRC") }
func BenchmarkAblations(b *testing.B)              { benchExperiment(b, "ABL") }
func BenchmarkT5GapOpenProblem(b *testing.B)       { benchExperiment(b, "T5G") }

// BenchmarkEngineMatrix runs the full strategy matrix over the quick
// corpus on the execution engine at several worker counts — the
// perf-trajectory backbone for cmd/bench (records are identical across
// counts; only wall time differs).
func BenchmarkEngineMatrix(b *testing.B) {
	fams, err := corpus.Select("all")
	if err != nil {
		b.Fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: 20060408, Quick: true})
	if err != nil {
		b.Fatal(err)
	}
	matrix := engine.StandardMatrix()
	for _, workers := range []int{1, 4, 8} {
		b.Run("p"+itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				recs, err := engine.Run(context.Background(),
					engine.Config{Parallel: workers}, insts, matrix, nil)
				if err != nil {
					b.Fatal(err)
				}
				if len(recs) != len(insts)*len(matrix) {
					b.Fatalf("got %d records, want %d", len(recs), len(insts)*len(matrix))
				}
			}
		})
	}
}

// Scaling benchmarks.

func BenchmarkGreedyColorable(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			g := graph.RandomER(rng, n, 8.0/float64(n)) // ~8 avg degree
			k := greedy.ColoringNumber(g)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !greedy.IsGreedyKColorable(g, k) {
					b.Fatal("must be colorable at col(G)")
				}
			}
		})
	}
}

func BenchmarkMCSChordalRecognition(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			g := graph.RandomChordal(rng, n, n/2, 5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !chordal.IsChordal(g) {
					b.Fatal("generator must produce chordal graphs")
				}
			}
		})
	}
}

// The Theorem 5 punchline: the polynomial chordal decision scales
// smoothly. The exact coloring-with-identification runs only at the
// smallest size: branch-and-bound happens to be fast on easy random
// interval instances, but it has no polynomial guarantee — its blowup
// shows on adversarial inputs (see the Theorem 4 gadgets in
// EXPERIMENTS.md), and enabling it at n=300 would make the suite
// unbounded in the worst case.
func BenchmarkThm5PolyVsExact(b *testing.B) {
	sizes := []int{12, 60, 300}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(3))
		g := graph.RandomInterval(rng, n, 3*n/2, 6)
		peo, ok := chordal.PEO(g)
		if !ok {
			b.Fatal("interval graph must be chordal")
		}
		k := chordal.Omega(g, peo)
		x, y := graph.V(0), graph.V(n-1)
		b.Run("poly/"+sizeName(n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := coalesce.ChordalIncremental(g, x, y, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		if n == sizes[0] {
			b.Run("exact/"+sizeName(n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					exact.KColorableIdentified(g, x, y, k)
				}
			})
		}
	}
}

func BenchmarkSSAPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	p := ir.DefaultRandomParams()
	p.Vars, p.Blocks = 12, 12
	fn := ir.Random(rng, p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := ssa.Pipeline(fn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConservativeStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomChordal(rng, 200, 100, 5)
	graph.SprinkleAffinities(rng, g, 120, 8)
	k := greedy.ColoringNumber(g)
	for _, tc := range []struct {
		name string
		test coalesce.Test
	}{
		{"briggs+george", coalesce.TestBriggsGeorge},
		{"brute", coalesce.TestBrute},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				coalesce.Conservative(g, k, tc.test)
			}
		})
	}
	b.Run("optimistic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			coalesce.Optimistic(g, k)
		}
	})
}

func sizeName(n int) string {
	switch {
	case n >= 1000:
		return "n" + itoa(n/1000) + "k" + itoa(n%1000/100)
	default:
		return "n" + itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
