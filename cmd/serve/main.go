// Command serve runs the online coalescing service: an HTTP/JSON API that
// races a strategy portfolio under per-request deadlines over a shared
// worker pool, with canonical-graph result caching and backpressure.
//
// Usage:
//
//	serve -addr :8080 -workers 8 -queue 64 -cache 4096 \
//	      -deadline 2s -max-deadline 30s
//
// Endpoints: POST /v1/coalesce, POST /v1/allocate, GET /healthz,
// GET /metrics (Prometheus), GET /stats (JSON). With -pprof, the
// net/http/pprof profile endpoints are additionally mounted under
// /debug/pprof/ (off by default — profiles reveal internals and cost
// CPU; enable when diagnosing a pooled-path regression, see README).
// See README.md for the request/response schema. SIGINT/SIGTERM shut
// down gracefully: the listener stops accepting, in-flight requests
// finish (up to -shutdown-grace), then the pool drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regcoal/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "bounded submission queue; full = 429 (0 = 4×workers)")
		cacheCap    = flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
		cacheShards = flag.Int("cache-shards", 16, "result cache shard count")
		deadline    = flag.Duration("deadline", 2*time.Second, "default per-request strategy-race deadline")
		maxDeadline = flag.Duration("max-deadline", 30*time.Second, "upper clamp on requested deadlines")
		portfolio   = flag.String("portfolio", "", "comma-separated default coalescing portfolio (empty = built-in)")
		grace       = flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown window")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; see README)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:         *workers,
		QueueCap:        *queue,
		CacheCapacity:   *cacheCap,
		CacheShards:     *cacheShards,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
	}
	if *portfolio != "" {
		cfg.Portfolio = strings.Split(*portfolio, ",")
	}
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	handler := svc.Handler()
	if *pprofOn {
		// Explicit registration on our own mux — importing net/http/pprof
		// for its side effect would silently expose the profiles on the
		// DefaultServeMux even without the flag. With the pooled solve
		// path, the heap and allocs profiles are the first stop when a
		// latency or RSS regression appears in production: a hot
		// sync.Pool shows up as near-zero steady-state allocation there.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serve: listening on %s (workers=%d queue=%d cache=%d deadline=%v)",
		*addr, *workers, *queue, *cacheCap, *deadline)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("serve: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("serve: shutdown: %v", err)
		}
		svc.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			svc.Close()
			log.Fatalf("serve: %v", err)
		}
	}
}
