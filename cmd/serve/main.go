// Command serve runs the online coalescing service: an HTTP/JSON API that
// races a strategy portfolio under per-request deadlines over a shared
// worker pool, with canonical-graph result caching and backpressure.
//
// Usage:
//
//	serve -addr :8080 -workers 8 -queue 64 -cache 4096 \
//	      -deadline 2s -max-deadline 30s
//
// Endpoints: POST /v1/coalesce, POST /v1/allocate, POST /v1/spill,
// POST /v1/batch, GET /livez + /healthz (liveness), GET /readyz
// (readiness; 503 while draining), GET /metrics (Prometheus), GET /stats
// (JSON). With -pprof, the net/http/pprof profile endpoints are
// additionally mounted under /debug/pprof/ (off by default — profiles
// reveal internals and cost CPU; enable when diagnosing a pooled-path
// regression, see README). See README.md for the request/response
// schema. SIGINT/SIGTERM shut down gracefully: readiness flips to 503 so
// load balancers stop routing here, in-flight requests (including whole
// batches) drain, the listener closes, then the pool stops — all within
// -shutdown-grace.
//
// Cluster mode (-cluster) runs this process as one node of a
// consistent-hash sharded tier (see docs/ARCHITECTURE.md):
//
//	serve -cluster -role worker -addr :8081 \
//	      -self http://10.0.0.1:8081 \
//	      -peers http://10.0.0.1:8081,http://10.0.0.2:8081
//	serve -cluster -role router -addr :8080 \
//	      -peers http://10.0.0.1:8081,http://10.0.0.2:8081
//
// A worker embeds the full single-node service plus the tiered cache
// (peer fill from the shard that owns a canonical hash) and two-lane
// admission control. A router holds no solver state: it shards requests
// across -peers by canonical graph hash and splices /v1/batch fan-outs
// back together byte-identically.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regcoal/internal/cluster"
	"regcoal/internal/faultinject"
	"regcoal/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "bounded submission queue; full = 429 (0 = 4×workers)")
		cacheCap    = flag.Int("cache", 4096, "result cache capacity in entries (negative disables)")
		cacheShards = flag.Int("cache-shards", 16, "result cache shard count")
		deadline    = flag.Duration("deadline", 2*time.Second, "default per-request strategy-race deadline")
		maxDeadline = flag.Duration("max-deadline", 30*time.Second, "upper clamp on requested deadlines")
		portfolio   = flag.String("portfolio", "", "comma-separated default coalescing portfolio (empty = built-in)")
		grace       = flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown window")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; see README)")

		clusterOn = flag.Bool("cluster", false, "run as a cluster node (see -role, -peers, -self)")
		role      = flag.String("role", "worker", "cluster role: worker or router (with -cluster)")
		peers     = flag.String("peers", "", "comma-separated worker base URLs (the shard set; same list on every node)")
		self      = flag.String("self", "", "this worker's base URL as it appears in -peers (worker role)")
		vnodes    = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per worker on the consistent-hash ring")
		replicas  = flag.Int("replicas", cluster.DefaultReplicas, "replica-set size R: workers owning each hash range (same value on every node)")

		joinURL     = flag.String("join", "", "worker: router base URL to announce this node to at startup (live join) and to leave on shutdown")
		handoffRate = flag.Float64("handoff-rate", 0, "worker: max cache entries streamed per second during a reshard handoff (0 = default 200)")
		retryBudget = flag.Int("retry-budget", 0, "router: total attempts per request across replicas (0 = default 3)")
		hedgeAfter  = flag.Duration("hedge-after", 250*time.Millisecond, "router: launch a hedged attempt on the next replica after this long (0 disables)")
		faultPlan   = flag.String("fault-plan", "", "path to a fault-injection plan JSON (off when empty; see docs/FAULT_INJECTION.md)")
	)
	flag.Parse()

	peerList := splitList(*peers)
	var plan *faultinject.Plan
	if *faultPlan != "" {
		p, err := faultinject.LoadPlan(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serve:", err)
			os.Exit(1)
		}
		plan = p
		log.Printf("serve: fault injection armed from %s (seed %d, %d rules)", *faultPlan, p.Seed, len(p.Rules))
	}
	if *clusterOn && *role == "router" {
		runRouter(*addr, peerList, *vnodes, *replicas, *retryBudget, *hedgeAfter, *grace, plan)
		return
	}

	cfg := service.Config{
		Workers:         *workers,
		QueueCap:        *queue,
		CacheCapacity:   *cacheCap,
		CacheShards:     *cacheShards,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
	}
	if *portfolio != "" {
		cfg.Portfolio = strings.Split(*portfolio, ",")
	}
	svc, err := service.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}

	var handler http.Handler = svc.Handler()
	var clusterWorker *cluster.Worker
	if *clusterOn {
		if *role != "worker" {
			fmt.Fprintf(os.Stderr, "serve: unknown -role %q (want worker or router)\n", *role)
			os.Exit(1)
		}
		if *joinURL != "" && *self != "" && !contains(peerList, *self) {
			// Joining an existing ring: the node set is -peers plus this
			// node. The router's broadcast (or the first stale-epoch 409)
			// overwrites this provisional view with the cluster's real one.
			peerList = append(peerList, *self)
		}
		wcfg := cluster.WorkerConfig{
			Self:        *self,
			Peers:       peerList,
			VNodes:      *vnodes,
			Replicas:    *replicas,
			HandoffRate: *handoffRate,
		}
		var inj *faultinject.Injector
		if plan != nil {
			inj = faultinject.New(plan)
			wcfg.Client = &http.Client{
				Timeout:   2 * time.Second,
				Transport: inj.Transport(nil, faultinject.NameMap(peerList)),
			}
		}
		worker, werr := cluster.NewWorker(svc, wcfg)
		if werr != nil {
			fmt.Fprintln(os.Stderr, "serve:", werr)
			os.Exit(1)
		}
		handler = worker
		clusterWorker = worker
		if inj != nil {
			// This worker's name in the plan is its position in -peers.
			name := *self
			for i, p := range peerList {
				if p == *self {
					name = fmt.Sprintf("w%d", i)
					break
				}
			}
			handler = inj.Middleware(name, handler)
		}
		log.Printf("serve: cluster worker %s, %d peers, R=%d", *self, len(peerList), *replicas)
	}
	if *pprofOn {
		// Explicit registration on our own mux — importing net/http/pprof
		// for its side effect would silently expose the profiles on the
		// DefaultServeMux even without the flag. With the pooled solve
		// path, the heap and allocs profiles are the first stop when a
		// latency or RSS regression appears in production: a hot
		// sync.Pool shows up as near-zero steady-state allocation there.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serve: listening on %s (workers=%d queue=%d cache=%d deadline=%v)",
		*addr, *workers, *queue, *cacheCap, *deadline)

	if clusterWorker != nil && *joinURL != "" {
		// Announce the join once the listener is up: the router bumps the
		// epoch, broadcasts the new view, and peers start streaming this
		// node its share of the cache.
		wire, jerr := cluster.PostTopologyUpdate(nil, *joinURL, []string{*self}, nil)
		if jerr != nil {
			log.Printf("serve: join %s: %v (serving anyway; an internal RPC will reconcile)", *joinURL, jerr)
		} else {
			log.Printf("serve: joined ring at epoch %d (%d nodes)", wire.Epoch, len(wire.Nodes))
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("serve: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if clusterWorker != nil && *joinURL != "" {
			// Leave the ring first: the router reassigns this node's hash
			// ranges and broadcasts, which triggers this worker's own
			// handoff — stream the reassigned cache entries and sessions
			// to their new owners before the service stops answering.
			if wire, lerr := cluster.PostTopologyUpdate(nil, *joinURL, nil, []string{*self}); lerr != nil {
				log.Printf("serve: leave %s: %v", *joinURL, lerr)
			} else {
				log.Printf("serve: left ring at epoch %d", wire.Epoch)
			}
			if herr := clusterWorker.HandoffWait(ctx); herr != nil {
				log.Printf("serve: handoff: %v", herr)
			}
		}
		// Drain order matters: flip readiness first so load balancers and
		// cluster routers stop sending traffic here, wait for in-flight
		// work (a /v1/batch holds InFlight for its whole fan-out), then
		// close the listener and stop the pool.
		svc.BeginDrain()
		if err := svc.Drain(ctx); err != nil {
			log.Printf("serve: drain: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("serve: shutdown: %v", err)
		}
		svc.Close()
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			svc.Close()
			log.Fatalf("serve: %v", err)
		}
	}
}

// runRouter serves the stateless sharding tier: no solver, no pool — just
// the consistent-hash proxy over the worker set.
func runRouter(addr string, workerURLs []string, vnodes, replicas, retryBudget int, hedgeAfter, grace time.Duration, plan *faultinject.Plan) {
	rcfg := cluster.RouterConfig{
		Workers:     workerURLs,
		VNodes:      vnodes,
		Replicas:    replicas,
		RetryBudget: retryBudget,
		HedgeAfter:  hedgeAfter,
	}
	if plan != nil {
		inj := faultinject.New(plan)
		rcfg.Client = &http.Client{
			Timeout:   60 * time.Second,
			Transport: inj.Transport(nil, faultinject.NameMap(workerURLs)),
		}
	}
	router, err := cluster.NewRouter(rcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           router,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serve: cluster router on %s over %d workers (R=%d, hedge %v)", addr, len(workerURLs), replicas, hedgeAfter)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("serve: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("serve: shutdown: %v", err)
		}
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
