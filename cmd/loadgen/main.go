// Command loadgen replays corpus families as concurrent traffic against a
// running coalescing service (cmd/serve) and reports throughput, latency
// percentiles, and validity: every response body is decoded and checked
// against the instance it answers. All logic lives in
// internal/service/loadgen; this command only parses flags.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -families chordal,interval \
//	        -concurrency 64 -n 1024 -deadline-ms 100
//	loadgen -endpoint spill -families ssa-pressure,interval-pressure
//	loadgen -json -n 4096        # machine-readable report (ns durations)
//
// With -n larger than the instance count, instances repeat round-robin,
// which exercises the server's canonical-graph cache; the report counts
// the hits the server declared via the X-Regcoal-Cache header.
//
// Cluster runs: -addr accepts a comma-separated target list (several
// routers, or the workers directly) replayed round-robin. Responses that
// carry the router's X-Regcoal-Shard header are broken down per shard,
// so a run against a cluster shows which worker answered what:
//
//	loadgen -addr http://r1:8080,http://r2:8080 -families all -n 4096
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"regcoal/internal/cluster"
	"regcoal/internal/faultinject"
	"regcoal/internal/service/loadgen"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "service base URL, or a comma-separated list of targets hit round-robin")
		endpoint    = flag.String("endpoint", "coalesce", "endpoint: coalesce, allocate, or spill")
		families    = flag.String("families", "all", "comma-separated corpus families, or 'all'")
		quick       = flag.Bool("quick", false, "small per-family instance counts")
		seed        = flag.Int64("seed", 20060408, "base corpus seed")
		n           = flag.Int("n", 0, "total requests (0 = one pass over the instances)")
		concurrency = flag.Int("concurrency", 64, "in-flight requests")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-request deadline (0 = server default)")
		format      = flag.String("format", "native", "graph encoding: native, text, dimacs")
		strategies  = flag.String("strategies", "", "comma-separated portfolio override")
		noCache     = flag.Bool("no-cache", false, "send no_cache on every request")
		stats       = flag.Bool("stats", true, "fetch and print /stats after the run")
		slowN       = flag.Int("slow", 0, "report the N slowest requests with trace IDs and per-phase timings")
		asJSON      = flag.Bool("json", false, "emit the report as JSON on stdout (durations in ns) instead of the text summary")
		chaos       = flag.String("chaos", "", "path to a fault-injection plan JSON applied client-side to generated traffic (see docs/FAULT_INJECTION.md)")
		churnNode   = flag.String("churn", "", "worker base URL to repeatedly remove from and re-add to the ring mid-run via the first target's /internal/topology (rehearses live resharding; see docs/RESHARDING.md)")
		churnEvery  = flag.Duration("churn-every", 2*time.Second, "interval between -churn membership flips")
	)
	flag.Parse()

	jobOpts := loadgen.JobOptions{Format: *format, DeadlineMS: *deadlineMS, NoCache: *noCache}
	if *strategies != "" {
		jobOpts.Strategies = strings.Split(*strategies, ",")
	}
	jobs, err := loadgen.BuildJobs(*families, *seed, *quick, jobOpts)
	if err != nil {
		fatal(err)
	}
	targets := strings.Split(*addr, ",")
	for i := range targets {
		targets[i] = strings.TrimSpace(targets[i])
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d instances -> %s/v1/%s, concurrency %d\n",
		len(jobs), strings.Join(targets, ","), *endpoint, *concurrency)

	// -chaos wraps the generator's own transport: target i is peer "w<i>"
	// in the plan, and drops/delays/blackholes hit requests before they
	// leave the client. Useful for rehearsing how dashboards and retry
	// policies read under a lossy network without touching the servers.
	var inj *faultinject.Injector
	var client *http.Client
	if *chaos != "" {
		plan, perr := faultinject.LoadPlan(*chaos)
		if perr != nil {
			fatal(perr)
		}
		inj = faultinject.New(plan)
		client = &http.Client{
			Timeout:   60 * time.Second,
			Transport: inj.Transport(nil, faultinject.NameMap(targets)),
		}
		fmt.Fprintf(os.Stderr, "loadgen: chaos plan %s armed (seed %d, %d rules)\n", *chaos, plan.Seed, len(plan.Rules))
	}

	// -churn flips one worker's membership while the load runs: remove,
	// wait an interval, re-add, repeat — every flip bumps the epoch and
	// triggers the handoff/migration machinery under real traffic. The
	// node is always re-added before exit so the ring ends whole.
	churnDone := make(chan struct{})
	churnStopped := make(chan struct{})
	if *churnNode != "" {
		go func() {
			defer close(churnStopped)
			removed := false
			flips := 0
			defer func() {
				if removed {
					if _, err := cluster.PostTopologyUpdate(client, targets[0], []string{*churnNode}, nil); err != nil {
						fmt.Fprintf(os.Stderr, "loadgen: churn re-add: %v\n", err)
					}
				}
				fmt.Fprintf(os.Stderr, "loadgen: churn flipped %s %d times\n", *churnNode, flips)
			}()
			tick := time.NewTicker(*churnEvery)
			defer tick.Stop()
			for {
				select {
				case <-churnDone:
					return
				case <-tick.C:
				}
				var add, remove []string
				if removed {
					add = []string{*churnNode}
				} else {
					remove = []string{*churnNode}
				}
				if _, err := cluster.PostTopologyUpdate(client, targets[0], add, remove); err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: churn: %v\n", err)
					continue
				}
				removed = !removed
				flips++
			}
		}()
	} else {
		close(churnStopped)
	}

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		Targets:     targets,
		Endpoint:    *endpoint,
		Concurrency: *concurrency,
		Requests:    *n,
		SlowN:       *slowN,
		Client:      client,
	}, jobs)
	close(churnDone)
	<-churnStopped
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		// The JSON shape mirrors what the service perf suite records in
		// BENCH_service.json, so ad-hoc load runs compare directly
		// against the committed trajectory.
		body, err := json.MarshalIndent(struct {
			*loadgen.Report
			ThroughputRPS float64
		}{rep, rep.Throughput()}, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s\n", body)
	} else {
		fmt.Print(rep.String())
	}

	if inj != nil {
		st := inj.Stats()
		fmt.Fprintf(os.Stderr, "loadgen: chaos injected %d drops, %d delays, %d errors\n", st.Drops, st.Delays, st.Errors)
	}
	if *stats {
		for _, target := range targets {
			if snapshot, err := loadgen.FetchStats(context.Background(), nil, target); err == nil {
				body, _ := json.Marshal(snapshot)
				fmt.Printf("server stats %s: %s\n", target, body)
			}
		}
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
