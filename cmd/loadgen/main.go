// Command loadgen replays corpus families as concurrent traffic against a
// running coalescing service (cmd/serve) and reports throughput, latency
// percentiles, and validity: every response body is decoded and checked
// against the instance it answers.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -families chordal,interval \
//	        -concurrency 64 -n 1024 -deadline-ms 100
//
// With -n larger than the instance count, instances repeat round-robin,
// which exercises the server's canonical-graph cache; the report counts
// the hits the server declared via the X-Regcoal-Cache header.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"regcoal/internal/corpus"
	"regcoal/internal/service/loadgen"
)

func main() {
	var (
		addr        = flag.String("addr", "http://localhost:8080", "service base URL")
		endpoint    = flag.String("endpoint", "coalesce", "endpoint: coalesce or allocate")
		families    = flag.String("families", "all", "comma-separated corpus families, or 'all'")
		quick       = flag.Bool("quick", false, "small per-family instance counts")
		seed        = flag.Int64("seed", 20060408, "base corpus seed")
		n           = flag.Int("n", 0, "total requests (0 = one pass over the instances)")
		concurrency = flag.Int("concurrency", 64, "in-flight requests")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-request deadline (0 = server default)")
		format      = flag.String("format", "native", "graph encoding: native, text, dimacs")
		strategies  = flag.String("strategies", "", "comma-separated portfolio override")
		noCache     = flag.Bool("no-cache", false, "send no_cache on every request")
		stats       = flag.Bool("stats", true, "fetch and print /stats after the run")
	)
	flag.Parse()

	fams, err := corpus.Select(*families)
	if err != nil {
		fatal(err)
	}
	insts, err := corpus.BuildAll(fams, corpus.Params{Seed: *seed, Quick: *quick})
	if err != nil {
		fatal(err)
	}
	jobOpts := loadgen.JobOptions{Format: *format, DeadlineMS: *deadlineMS, NoCache: *noCache}
	if *strategies != "" {
		jobOpts.Strategies = strings.Split(*strategies, ",")
	}
	jobs, err := loadgen.JobsFromInstances(insts, jobOpts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d instances -> %s/v1/%s, concurrency %d\n",
		len(jobs), *addr, *endpoint, *concurrency)

	rep, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:     *addr,
		Endpoint:    *endpoint,
		Concurrency: *concurrency,
		Requests:    *n,
	}, jobs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.String())

	if *stats {
		resp, err := http.Get(strings.TrimSuffix(*addr, "/") + "/stats")
		if err == nil {
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			fmt.Printf("server stats: %s\n", body)
		}
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
