// Command reductions builds and verifies the paper's NP-completeness
// reductions on random source instances, and can dump the produced
// coalescing instance in the textual format.
//
// Usage:
//
//	reductions -thm 2 -n 6 -seed 1 -dump out.g
//	reductions -thm 6 -n 4 -trials 10
//
// Theorems: 2 (multiway cut → aggressive), 3 (colorability → conservative),
// 4 (3SAT → incremental), 6 (vertex cover → optimistic).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"regcoal/internal/graph"
	"regcoal/internal/mwc"
	"regcoal/internal/reduction"
	"regcoal/internal/sat"
	"regcoal/internal/vcover"
)

func main() {
	var (
		thm    = flag.Int("thm", 2, "theorem: 2, 3, 4 or 6")
		n      = flag.Int("n", 5, "source instance size")
		seed   = flag.Int64("seed", 1, "random seed")
		trials = flag.Int("trials", 5, "number of random instances to verify")
		dump   = flag.String("dump", "", "write the last produced instance to this file")
	)
	flag.Parse()
	if err := run(*thm, *n, *seed, *trials, *dump); err != nil {
		fmt.Fprintln(os.Stderr, "reductions:", err)
		os.Exit(1)
	}
}

func run(thm, n int, seed int64, trials int, dump string) error {
	rng := rand.New(rand.NewSource(seed))
	var lastFile *graph.File
	for i := 0; i < trials; i++ {
		switch thm {
		case 2:
			in := mwc.Random(rng, n, 0.4, 3)
			if err := reduction.VerifyMultiwayCut(in); err != nil {
				return err
			}
			red := reduction.FromMultiwayCut(in)
			cut, _ := in.SolveExact()
			fmt.Printf("thm2 #%d: n=%d edges=%d min-cut=%d -> instance %d vertices, %d moves: equivalent ✓\n",
				i, n, in.G.E(), cut, red.G.N(), red.G.NumAffinities())
			lastFile = &graph.File{G: red.G}
		case 3:
			src := graph.RandomER(rng, n, 0.45)
			if err := reduction.VerifyColorability(src, 3); err != nil {
				return err
			}
			red := reduction.FromColorability(src, 3)
			fmt.Printf("thm3 #%d: n=%d edges=%d -> instance %d vertices, %d moves: equivalent ✓\n",
				i, n, src.E(), red.G.N(), red.G.NumAffinities())
			lastFile = &graph.File{G: red.G, K: 3}
		case 4:
			f := sat.Random3SAT(rng, max(3, n), n+2)
			if err := reduction.VerifySAT(f); err != nil {
				return err
			}
			ii, err := reduction.FromSAT(f)
			if err != nil {
				return err
			}
			_, s := f.Solve()
			fmt.Printf("thm4 #%d: vars=%d clauses=%d sat=%v -> instance %d vertices: equivalent ✓\n",
				i, f.NumVars, len(f.Clauses), s, ii.G.N())
			lastFile = &graph.File{G: ii.G, K: 3}
		case 6:
			src := vcover.RandomMaxDeg3(rng, n, n)
			if err := reduction.VerifyVertexCover(src, false); err != nil {
				return err
			}
			oi, err := reduction.FromVertexCover(src)
			if err != nil {
				return err
			}
			cover := vcover.SolveExact(src)
			fmt.Printf("thm6 #%d: n=%d edges=%d min-cover=%d -> instance %d vertices, %d moves: equivalent ✓\n",
				i, n, src.E(), len(cover), oi.G.N(), oi.G.NumAffinities())
			lastFile = &graph.File{G: oi.G, K: oi.K}
		default:
			return fmt.Errorf("unknown theorem %d (want 2, 3, 4 or 6)", thm)
		}
	}
	if dump != "" && lastFile != nil {
		f, err := os.Create(dump)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := lastFile.Write(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dump)
	}
	return nil
}
