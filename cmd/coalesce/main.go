// Command coalesce runs a coalescing strategy on an instance file in the
// textual challenge format and reports what was coalesced.
//
// Usage:
//
//	coalesce -in instance.g -strategy brute [-k 6] [-compare] [-color]
//
// With -compare, every strategy runs and a comparison table is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"regcoal"
	"regcoal/internal/graph"
)

func main() {
	var (
		inPath   = flag.String("in", "", "instance file (default stdin)")
		strategy = flag.String("strategy", "briggs+george", "strategy: aggressive|briggs|george|briggs+george|ext-george|brute|optimistic")
		kFlag    = flag.Int("k", 0, "register count (overrides the file's k)")
		compare  = flag.Bool("compare", false, "run every strategy and compare")
		color    = flag.Bool("color", false, "print a coloring of the coalesced graph")
		dimacs   = flag.Bool("dimacs", false, "input is DIMACS .col (with regcoal move comments)")
	)
	flag.Parse()
	if err := run(*inPath, *strategy, *kFlag, *compare, *color, *dimacs); err != nil {
		fmt.Fprintln(os.Stderr, "coalesce:", err)
		os.Exit(1)
	}
}

func run(inPath, strategy string, kFlag int, compare, color, dimacs bool) error {
	in := os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var file *regcoal.File
	var err error
	if dimacs {
		g, derr := graph.ReadDIMACS(in)
		if derr != nil {
			return derr
		}
		file = &regcoal.File{G: g}
	} else {
		file, err = regcoal.ReadGraph(in)
		if err != nil {
			return err
		}
	}
	k := file.K
	if kFlag > 0 {
		k = kFlag
	}
	if k <= 0 {
		return fmt.Errorf("no register count: set one in the file ('k 6') or pass -k")
	}
	g := file.G
	fmt.Printf("instance: %d vertices, %d interferences, %d moves (weight %d), k=%d\n",
		g.N(), g.E(), g.NumAffinities(), g.TotalAffinityWeight(), k)
	fmt.Printf("greedy-%d-colorable before coalescing: %v\n\n", k, regcoal.IsGreedyKColorable(g, k))

	strategies := []regcoal.Strategy{regcoal.Strategy(strategy)}
	if compare {
		strategies = regcoal.Strategies()
	}
	for _, s := range strategies {
		res, ok := regcoal.Run(g, k, s)
		if !ok {
			return fmt.Errorf("unknown strategy %q", s)
		}
		fmt.Printf("%-14s coalesced %d moves (weight %d), kept %d (weight %d), colorable=%v, rounds=%d\n",
			s, len(res.Coalesced), res.CoalescedWeight,
			len(res.Remaining), res.RemainingWeight, res.Colorable, res.Rounds)
		if color && !compare {
			printColoring(g, k, res)
		}
	}
	return nil
}

func printColoring(g *regcoal.Graph, k int, res *regcoal.Result) {
	if !res.Colorable {
		fmt.Println("  (coalesced graph not greedy-k-colorable; no coloring printed)")
		return
	}
	alloc, err := regcoal.Allocate(g, k, regcoal.AllocNone)
	if err != nil || len(alloc.Spilled) > 0 {
		fmt.Println("  (coloring failed)")
		return
	}
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  %-12s -> r%d\n", g.Name(regcoal.V(v)), alloc.Coloring[v])
	}
}
