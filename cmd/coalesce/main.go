// Command coalesce runs a coalescing strategy on an instance file in the
// textual challenge format (or DIMACS) and reports what was coalesced.
//
// Usage:
//
//	coalesce -in instance.g -strategy brute [-k 6] [-compare] [-color]
//	coalesce -in instance.col -dimacs -strategy exact -timeout 5s -json
//
// With -compare, the full strategy matrix (every registry strategy plus
// the IRC allocator and the exact solver) runs and a comparison is
// printed. With -json, results stream as engine records (the same JSONL
// schema cmd/bench emits). -timeout bounds each strategy run; the
// cancelable solvers (exact) stop at the deadline and the record reports
// the timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"regcoal"
	"regcoal/internal/coalesce"
	"regcoal/internal/corpus"
	"regcoal/internal/engine"
	"regcoal/internal/graph"
)

func main() {
	var (
		inPath   = flag.String("in", "", "instance file (default stdin)")
		strategy = flag.String("strategy", "briggs+george", "strategy: a registry strategy, irc, or exact")
		kFlag    = flag.Int("k", 0, "register count (overrides the file's k)")
		compare  = flag.Bool("compare", false, "run the full strategy matrix and compare")
		color    = flag.Bool("color", false, "print a coloring of the coalesced graph")
		dimacs   = flag.Bool("dimacs", false, "input is DIMACS .col (with regcoal comments)")
		jsonOut  = flag.Bool("json", false, "emit engine records as JSONL instead of text")
		timeout  = flag.Duration("timeout", 0, "per-strategy timeout (0 = none); cancelable solvers stop early")
	)
	flag.Parse()
	if err := run(*inPath, *strategy, *kFlag, *compare, *color, *dimacs, *jsonOut, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "coalesce:", err)
		os.Exit(1)
	}
}

func run(inPath, strategy string, kFlag int, compare, color, dimacs, jsonOut bool, timeout time.Duration) error {
	in := os.Stdin
	name := "stdin"
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		name = filepath.Base(inPath)
	}
	var file *graph.File
	var err error
	if dimacs {
		file, err = graph.ReadDIMACSFile(in)
	} else {
		file, err = graph.ReadFrom(in)
	}
	if err != nil {
		return err
	}
	k := file.K
	if kFlag > 0 {
		k = kFlag
	}
	if k <= 0 {
		return fmt.Errorf("no register count: set one in the file ('k 6') or pass -k")
	}
	file = &graph.File{G: file.G, K: k}
	g := file.G

	matrix := engine.StandardMatrix()
	runners := matrix
	if !compare {
		runners = nil
		for _, r := range matrix {
			if r.Name == strategy {
				runners = []engine.Runner{r}
				break
			}
		}
		if runners == nil {
			// Non-core registry strategies (chordal-inc, vegdahl) are not
			// matrix columns but are still selectable by name.
			if st, ok := coalesce.LookupStrategy(strategy); ok {
				runners = []engine.Runner{engine.StrategyRunner(st)}
			}
		}
		if runners == nil {
			return fmt.Errorf("unknown strategy %q (have %v)",
				strategy, append(engine.MatrixNames(matrix), "chordal-inc", "vegdahl"))
		}
	}

	inst := &corpus.Instance{Family: "adhoc", Name: name, File: file}
	cfg := engine.Config{Parallel: 1, Timeout: timeout, Timing: jsonOut}
	var sink engine.Sink
	if jsonOut {
		sink = engine.JSONLSink(os.Stdout)
	}
	recs, err := engine.Run(context.Background(), cfg, []*corpus.Instance{inst}, runners, sink)
	if err != nil {
		return err
	}
	if jsonOut {
		return nil
	}

	fmt.Printf("instance: %d vertices, %d interferences, %d moves (weight %d), k=%d\n",
		g.N(), g.E(), g.NumAffinities(), g.TotalAffinityWeight(), k)
	fmt.Printf("greedy-%d-colorable before coalescing: %v\n\n", k, regcoal.IsGreedyKColorable(g, k))
	for _, rec := range recs {
		if rec.Status != engine.StatusOK {
			fmt.Printf("%-14s %s: %s\n", rec.Strategy, rec.Status, rec.Error)
			continue
		}
		fmt.Printf("%-14s coalesced %d moves (weight %d), kept %d (weight %d), colorable=%v, rounds=%d",
			rec.Strategy, rec.CoalescedMoves, rec.CoalescedWeight,
			rec.Moves-rec.CoalescedMoves, rec.ResidualWeight, rec.GreedyAfter, rec.Rounds)
		if rec.Spills > 0 {
			fmt.Printf(", spills=%d", rec.Spills)
		}
		fmt.Println()
	}
	if color && !compare {
		printColoring(g, k)
	}
	return nil
}

func printColoring(g *regcoal.Graph, k int) {
	alloc, err := regcoal.Allocate(g, k, regcoal.AllocNone)
	if err != nil || len(alloc.Spilled) > 0 {
		fmt.Println("  (coloring failed)")
		return
	}
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  %-12s -> r%d\n", g.Name(regcoal.V(v)), alloc.Coloring[v])
	}
}
