package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"regcoal/internal/engine"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-list"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"chordal", "interval", "tiny"} {
		if !strings.Contains(out.String(), fam) {
			t.Errorf("-list output missing family %s:\n%s", fam, out.String())
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	cases := [][]string{
		{"-no-such-flag"},
		{"-families", "no-such-family"},
		{"-out", "xml"},
		{"positional"},
	}
	for _, args := range cases {
		if err := run(args, &out, &errb); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunQuickFamilyStreamsValidRecords(t *testing.T) {
	var out, errb bytes.Buffer
	err := run([]string{"-families", "tiny", "-quick", "-parallel", "2",
		"-timeout", "0", "-timing=false"}, &out, &errb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	matrix := len(engine.StandardMatrix())
	if len(lines)%matrix != 0 || len(lines) == 0 {
		t.Fatalf("%d records is not a multiple of the %d-strategy matrix", len(lines), matrix)
	}
	for i, line := range lines {
		var rec engine.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not a record: %v\n%s", i, err, line)
		}
		if rec.Seq != i {
			t.Fatalf("record %d has seq %d: stream must be in Seq order", i, rec.Seq)
		}
		if rec.Family != "tiny" || rec.Strategy == "" {
			t.Fatalf("bad record %+v", rec)
		}
		if rec.WallNS != 0 {
			t.Fatalf("timing captured despite -timing=false: %+v", rec)
		}
	}
	if !strings.Contains(errb.String(), "records over") {
		t.Errorf("summary table missing from stderr:\n%s", errb.String())
	}
}

func TestRunParallelByteIdentical(t *testing.T) {
	args := func(par string) []string {
		return []string{"-families", "tiny", "-quick", "-parallel", par,
			"-timeout", "0", "-timing=false"}
	}
	var out1, out8, errb bytes.Buffer
	if err := run(args("1"), &out1, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(args("8"), &out8, &errb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out8.Bytes()) {
		t.Fatal("record stream differs between -parallel 1 and 8")
	}
}
