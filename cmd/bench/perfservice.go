package main

// The -perf -group service kernel suite: measures the end-to-end request
// path of the online service rather than isolated solver kernels. Each
// per-family kernel drives the real HTTP handler in process (no network)
// over a deterministic corpus instance:
//
//   - svc-decode/<family>:  JSON request decode → graph build (the parse
//     side of the request path, no solving)
//   - svc-solve/<family>:   full decode → canonicalize → portfolio race →
//     encode with the cache bypassed (the steady-state compute path)
//   - svc-cached/<family>:  the same request answered from the canonical
//     result cache (decode → canonicalize → hash lookup → encode)
//   - svc-spill/<family>:   the spill endpoint on the high-pressure
//     families (decode → spill race → encode)
//   - svc-delta/<family>:   one warm-session delta apply on the
//     /v1/coalesce/delta endpoint (decode → validate → toggle one edge →
//     memoized incremental re-solve → encode); the contrast against
//     svc-solve/<family> is what the per-edit session path saves over
//     re-solving the instance from scratch
//
// plus two loadgen-driven kernel sets produced by the same concurrent,
// response-validating replayer that cmd/loadgen uses:
//
//   - svc-loadgen/*: against a single in-process HTTP server —
//     {mean,p50,p99} report per-request latency in ns/op, and
//     inv-throughput reports wall-clock per request (inverse QPS at the
//     kernel's fixed concurrency; it also carries ops_per_sec and the
//     run's cache hit rate)
//   - cluster-loadgen/*: the same workload through the sharded serving
//     tier (internal/cluster: one router in front of three workers, all
//     on loopback), measuring what consistent-hash routing, the tiered
//     cache, and batch-free request fan-out cost end to end
//
// Instances are drawn from the deterministic corpus families with a fixed
// seed, so kernel names and workloads are stable across commits; sizes
// change only with a serviceSuiteVersion bump.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"regcoal/internal/cluster"
	"regcoal/internal/corpus"
	"regcoal/internal/graph"
	"regcoal/internal/service"
	"regcoal/internal/service/loadgen"
	"regcoal/internal/session"
)

// serviceSuiteVersion bumps whenever service kernel names, seeds, or
// instance choices change, invalidating cross-version comparisons.
// v2: added the svc-delta/<family> warm-session kernels.
const serviceSuiteVersion = 2

// serviceSuiteSeed pins the corpus build the service kernels run over.
const serviceSuiteSeed = 0x5eed5e21

// serviceFamilies are the corpus families the per-request kernels cover:
// the two structured classes the paper cares about (chordal/SSA,
// interval), a dense adversarial class, and a high-pressure class that
// exercises the spill path.
var serviceFamilies = []string{"chordal", "interval", "er-dense", "ssa-pressure"}

// spillFamilies is the subset whose pressure exceeds k, where the spill
// endpoint has real work.
var spillFamilies = map[string]bool{"ssa-pressure": true, "er-dense": true}

// serviceInstance is one family's representative instance with its
// prebuilt request bodies.
type serviceInstance struct {
	family    string
	file      *graph.File
	solveBody []byte // no_cache: measures the compute path
	cacheBody []byte // cacheable: measures the hit path after priming
}

// serviceInstances builds one representative instance per family — the
// last (largest) instance the family generates, deterministic in the
// fixed seed.
func serviceInstances(quick bool) ([]serviceInstance, error) {
	out := make([]serviceInstance, 0, len(serviceFamilies))
	for _, name := range serviceFamilies {
		fams, err := corpus.Select(name)
		if err != nil {
			return nil, err
		}
		insts, err := corpus.BuildAll(fams, corpus.Params{Seed: serviceSuiteSeed, Quick: quick})
		if err != nil {
			return nil, err
		}
		if len(insts) == 0 {
			return nil, fmt.Errorf("perf: family %s generated no instances", name)
		}
		inst := insts[len(insts)-1]
		solve, err := loadgen.JobsFromInstances([]*corpus.Instance{inst}, loadgen.JobOptions{
			Format: "native", NoCache: true, DeadlineMS: 500,
		})
		if err != nil {
			return nil, err
		}
		cached, err := loadgen.JobsFromInstances([]*corpus.Instance{inst}, loadgen.JobOptions{
			Format: "native", DeadlineMS: 500,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, serviceInstance{
			family:    name,
			file:      inst.File,
			solveBody: solve[0].Body,
			cacheBody: cached[0].Body,
		})
	}
	return out, nil
}

// post drives the handler in process and panics on a non-200, so a broken
// service fails the suite loudly instead of timing error paths.
func post(h http.Handler, path string, body []byte) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		panic(fmt.Sprintf("perf: %s answered %d: %s", path, rec.Code, rec.Body.String()))
	}
}

// deltaTogglePair finds the first non-adjacent vertex pair of g — the
// edge the svc-delta kernel toggles. Deterministic in the graph, so the
// kernel workload is stable across runs.
func deltaTogglePair(g *graph.Graph) (graph.V, graph.V, bool) {
	n := graph.V(g.N())
	for u := graph.V(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				return u, v, true
			}
		}
	}
	return 0, 0, false
}

// postDelta drives /v1/coalesce/delta in process and decodes the
// response, panicking on a non-200 like post.
func postDelta(h http.Handler, body []byte) service.DeltaResponse {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/coalesce/delta", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		panic(fmt.Sprintf("perf: /v1/coalesce/delta answered %d: %s", rec.Code, rec.Body.String()))
	}
	var resp service.DeltaResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		panic(err)
	}
	return resp
}

// deltaKernel pins one warm session per family and returns a kernel that
// toggles a single non-edge per op: decode → validate → apply → memoized
// incremental re-solve → encode. Both toggle states are primed, so the
// steady state the kernel measures is the session memo-hit path.
func deltaKernel(h http.Handler, inst serviceInstance) (kernel, error) {
	u, v, ok := deltaTogglePair(inst.file.G)
	if !ok {
		return kernel{}, fmt.Errorf("perf: %s instance is complete, no edge to toggle", inst.family)
	}
	var req service.Request
	if err := json.Unmarshal(inst.solveBody, &req); err != nil {
		return kernel{}, err
	}
	createBody, err := json.Marshal(service.DeltaRequest{Op: "create", Graph: req.Graph, K: req.K})
	if err != nil {
		return kernel{}, err
	}
	sess := postDelta(h, createBody)
	addBody, err := json.Marshal(service.DeltaRequest{SessionID: sess.SessionID,
		Deltas: []session.Delta{{Op: session.OpAddEdge, U: int(u), V: int(v)}}})
	if err != nil {
		return kernel{}, err
	}
	delBody, err := json.Marshal(service.DeltaRequest{SessionID: sess.SessionID,
		Deltas: []session.Delta{{Op: session.OpRemoveEdge, U: int(u), V: int(v)}}})
	if err != nil {
		return kernel{}, err
	}
	for i := 0; i < 4; i++ {
		post(h, "/v1/coalesce/delta", addBody)
		post(h, "/v1/coalesce/delta", delBody)
	}
	add := true
	return kernel{"svc-delta/" + inst.family, func() {
		if add {
			post(h, "/v1/coalesce/delta", addBody)
		} else {
			post(h, "/v1/coalesce/delta", delBody)
		}
		add = !add
	}}, nil
}

// serviceKernels measures the service suite. The server is the real
// service.Server with default configuration; per-request kernels bypass
// the network by invoking the handler directly.
func serviceKernels(quick bool) ([]PerfKernel, error) {
	insts, err := serviceInstances(quick)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(service.Config{})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	h := svc.Handler()

	var kernels []kernel
	for i := range insts {
		inst := insts[i]
		kernels = append(kernels,
			kernel{"svc-decode/" + inst.family, func() {
				var req service.Request
				if err := json.Unmarshal(inst.solveBody, &req); err != nil {
					panic(err)
				}
				if _, err := req.Graph.ToFile(); err != nil {
					panic(err)
				}
			}},
			kernel{"svc-solve/" + inst.family, func() {
				post(h, "/v1/coalesce", inst.solveBody)
			}},
			kernel{"svc-cached/" + inst.family, func() {
				post(h, "/v1/coalesce", inst.cacheBody)
			}},
		)
		if spillFamilies[inst.family] {
			kernels = append(kernels, kernel{"svc-spill/" + inst.family, func() {
				post(h, "/v1/spill", inst.solveBody)
			}})
		}
		dk, err := deltaKernel(h, inst)
		if err != nil {
			return nil, err
		}
		kernels = append(kernels, dk)
	}
	// Prime the cache so every svc-cached op is a hit.
	for _, inst := range insts {
		post(h, "/v1/coalesce", inst.cacheBody)
	}
	out := measureKernels(kernels)

	lg, err := loadgenKernels(svc, insts, quick)
	if err != nil {
		return nil, err
	}
	out = append(out, lg...)

	cl, err := clusterKernels(insts, quick)
	if err != nil {
		return nil, err
	}
	return append(out, cl...), nil
}

// loadgenJobs converts the suite instances into the replayer's job shape.
func loadgenJobs(insts []serviceInstance) []loadgen.Job {
	var jobs []loadgen.Job
	for _, inst := range insts {
		jobs = append(jobs, loadgen.Job{Name: inst.family, Body: inst.cacheBody, File: inst.file})
	}
	return jobs
}

// loadgenRequests is the replay length: enough passes over the instance
// set that the cache-hit steady state dominates the cold misses.
func loadgenRequests(jobs int, quick bool) int {
	if quick {
		return 8 * jobs
	}
	return 24 * jobs
}

// runLoadgenKernels fires the replayer at baseURL and packages the report
// as the four <prefix>/{inv-throughput,mean,p50,p99} kernels.
// inv-throughput is wall-clock per request (1/QPS at this kernel's fixed
// concurrency) — deliberately NOT named a latency; mean/p50/p99 are the
// real per-request latency distribution. The inv-throughput kernel also
// carries the run's cache hit rate (hits + singleflight collapses over
// successful requests): a throughput shift with a hit-rate shift is a
// caching change, not a solver change.
func runLoadgenKernels(prefix, baseURL string, jobs []loadgen.Job, quick bool) ([]PerfKernel, error) {
	report, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:     baseURL,
		Endpoint:    "coalesce",
		Concurrency: 8,
		Requests:    loadgenRequests(len(jobs), quick),
		Client:      &http.Client{Timeout: 60 * time.Second},
	}, jobs)
	if err != nil {
		return nil, err
	}
	if report.Failed > 0 {
		return nil, fmt.Errorf("perf: %s kernel had %d failed requests: %s", prefix, report.Failed, report.FirstFailure)
	}
	hitRate := 0.0
	if report.OK > 0 {
		hitRate = round2(float64(report.CacheHits+report.Collapsed) / float64(report.OK))
	}
	var phaseNS map[string]float64
	if len(report.Phases) > 0 {
		phaseNS = make(map[string]float64, len(report.Phases))
		for name, p := range report.Phases {
			phaseNS[name] = float64(p.P50.Nanoseconds())
		}
	}
	return []PerfKernel{
		{Name: prefix + "/inv-throughput", NsPerOp: float64(report.Wall.Nanoseconds()) / float64(report.Requests),
			OpsPerSec: round2(report.Throughput()), HitRate: hitRate, PhaseNS: phaseNS},
		{Name: prefix + "/mean", NsPerOp: float64(report.Latencies.Mean.Nanoseconds())},
		{Name: prefix + "/p50", NsPerOp: float64(report.Latencies.P50.Nanoseconds())},
		{Name: prefix + "/p99", NsPerOp: float64(report.Latencies.P99.Nanoseconds())},
	}, nil
}

// loadgenKernels runs the concurrent replayer against an in-process HTTP
// server and reports throughput and latency percentiles as kernels.
func loadgenKernels(svc *service.Server, insts []serviceInstance, quick bool) ([]PerfKernel, error) {
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	return runLoadgenKernels("svc-loadgen", ts.URL, loadgenJobs(insts), quick)
}

// clusterWorkers is the shard count of the cluster bench scenario.
const clusterWorkers = 3

// clusterKernels runs the same replay through the sharded serving tier:
// one router fronting three workers on loopback, each worker a full
// service with its own pool and cache. The delta against svc-loadgen/* is
// the cost of the distribution layer — routing hop, readiness probes, and
// tiered-cache traffic — under an identical workload.
func clusterKernels(insts []serviceInstance, quick bool) ([]PerfKernel, error) {
	c, err := cluster.StartInProcess(clusterWorkers, cluster.InProcessOptions{})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	return runLoadgenKernels("cluster-loadgen", c.RouterURL, loadgenJobs(insts), quick)
}

// serviceKernelNames lists the service suite's kernel names without
// running anything (used by tests to pin the suite shape).
func serviceKernelNames() []string {
	var names []string
	for _, f := range serviceFamilies {
		names = append(names, "svc-decode/"+f, "svc-solve/"+f, "svc-cached/"+f)
		if spillFamilies[f] {
			names = append(names, "svc-spill/"+f)
		}
		names = append(names, "svc-delta/"+f)
	}
	for _, prefix := range []string{"svc-loadgen", "cluster-loadgen"} {
		names = append(names, prefix+"/inv-throughput", prefix+"/mean", prefix+"/p50", prefix+"/p99")
	}
	return names
}
