package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The perf suite itself takes ~seconds per kernel under testing.Benchmark,
// so these tests pin the plumbing — instance determinism, suite shape,
// run/trajectory (de)serialization — without timing anything.

func TestPerfInstancesDeterministic(t *testing.T) {
	a := perfInstances(true)
	b := perfInstances(true)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("instance counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].name != b[i].name {
			t.Fatalf("instance %d name %q vs %q", i, a[i].name, b[i].name)
		}
		if a[i].f.G.N() != b[i].f.G.N() || a[i].f.G.E() != b[i].f.G.E() {
			t.Fatalf("%s: graphs differ across builds (n %d/%d, e %d/%d)",
				a[i].name, a[i].f.G.N(), b[i].f.G.N(), a[i].f.G.E(), b[i].f.G.E())
		}
		if a[i].f.K != b[i].f.K || a[i].spillK != b[i].spillK {
			t.Fatalf("%s: k differs across builds", a[i].name)
		}
		if a[i].spillK >= a[i].f.K && a[i].f.K > 4 {
			t.Fatalf("%s: spillK %d not below tight k %d — spill kernels would be no-ops",
				a[i].name, a[i].spillK, a[i].f.K)
		}
		if err := a[i].f.G.Validate(); err != nil {
			t.Fatalf("%s: %v", a[i].name, err)
		}
	}
}

func TestPerfSuiteShape(t *testing.T) {
	insts := perfInstances(true)
	names := perfKernelNames(insts)
	want := 6 * len(insts) // build, clone, irc, spill-greedy, spill-inc, canon
	if len(names) != want {
		t.Fatalf("suite has %d kernels, want %d: %v", len(names), want, names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate kernel name %s", n)
		}
		seen[n] = true
	}
}

func TestLoadPerfRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := &PerfRun{
		Suite:   "graphcore",
		Version: perfSuiteVersion,
		Label:   "unit",
		Kernels: []PerfKernel{{Name: "irc/x", NsPerOp: 100, AllocsPerOp: 3, BytesPerOp: 64}},
	}
	runPath := filepath.Join(dir, "run.json")
	data, _ := json.Marshal(run)
	if err := os.WriteFile(runPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadPerfRun(runPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "unit" || len(got.Kernels) != 1 || got.Kernels[0].NsPerOp != 100 {
		t.Fatalf("bare run round-trip mangled: %+v", got)
	}

	// A trajectory file loads as its Current run, so the committed
	// BENCH_*.json can be passed to -baseline directly.
	traj := &PerfTrajectory{
		Suite:    "graphcore",
		Version:  perfSuiteVersion,
		Unit:     "ns/op",
		Baseline: run,
		Current: &PerfRun{Suite: "graphcore", Version: perfSuiteVersion, Label: "current",
			Kernels: []PerfKernel{{Name: "irc/x", NsPerOp: 50}}},
		Speedup: map[string]float64{"irc/x": 2},
	}
	trajPath := filepath.Join(dir, "traj.json")
	data, _ = json.Marshal(traj)
	if err := os.WriteFile(trajPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = loadPerfRun(trajPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "current" || got.Kernels[0].NsPerOp != 50 {
		t.Fatalf("trajectory load did not pick Current: %+v", got)
	}

	if _, err := loadPerfRun(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"not":"a run"}`), 0o644)
	if _, err := loadPerfRun(bad); err == nil {
		t.Fatal("loading a non-run JSON succeeded")
	}
}

// TestCommittedTrajectoryWellFormed keeps BENCH_graphcore.json honest:
// parseable, suite/version matching this binary, baseline+current
// present, and the dense IRC+spill kernels at the ≥2x acceptance gate.
func TestCommittedTrajectoryWellFormed(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_graphcore.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no committed trajectory: %v", err)
	}
	var traj PerfTrajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("BENCH_graphcore.json does not parse: %v", err)
	}
	if traj.Suite != "graphcore" || traj.Version != perfSuiteVersion {
		t.Fatalf("trajectory is %s v%d, binary expects graphcore v%d — bump or regenerate",
			traj.Suite, traj.Version, perfSuiteVersion)
	}
	if traj.Baseline == nil || traj.Current == nil || len(traj.Speedup) == 0 {
		t.Fatal("trajectory missing baseline/current/speedup")
	}
	gated := 0
	for kernel, s := range traj.Speedup {
		op, inst, ok := strings.Cut(kernel, "/")
		if !ok {
			t.Errorf("malformed kernel name %q", kernel)
			continue
		}
		dense := strings.HasPrefix(inst, "dense")
		if dense && (op == "irc" || op == "spill-greedy" || op == "spill-inc") {
			gated++
			if s < 2 {
				t.Errorf("%s speedup %.2f below the 2x acceptance gate", kernel, s)
			}
		}
	}
	if gated == 0 {
		t.Error("no dense IRC/spill kernels found in the trajectory")
	}
}
