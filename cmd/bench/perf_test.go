package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The perf suite itself takes ~seconds per kernel under testing.Benchmark,
// so these tests pin the plumbing — instance determinism, suite shape,
// run/trajectory (de)serialization — without timing anything.

func TestPerfInstancesDeterministic(t *testing.T) {
	a := perfInstances(true)
	b := perfInstances(true)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("instance counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].name != b[i].name {
			t.Fatalf("instance %d name %q vs %q", i, a[i].name, b[i].name)
		}
		if a[i].f.G.N() != b[i].f.G.N() || a[i].f.G.E() != b[i].f.G.E() {
			t.Fatalf("%s: graphs differ across builds (n %d/%d, e %d/%d)",
				a[i].name, a[i].f.G.N(), b[i].f.G.N(), a[i].f.G.E(), b[i].f.G.E())
		}
		if a[i].f.K != b[i].f.K || a[i].spillK != b[i].spillK {
			t.Fatalf("%s: k differs across builds", a[i].name)
		}
		if a[i].spillK >= a[i].f.K && a[i].f.K > 4 {
			t.Fatalf("%s: spillK %d not below tight k %d — spill kernels would be no-ops",
				a[i].name, a[i].spillK, a[i].f.K)
		}
		if err := a[i].f.G.Validate(); err != nil {
			t.Fatalf("%s: %v", a[i].name, err)
		}
	}
}

func TestPerfSuiteShape(t *testing.T) {
	insts := perfInstances(true)
	names := perfKernelNames(insts)
	want := 6 * len(insts) // build, clone, irc, spill-greedy, spill-inc, canon
	if len(names) != want {
		t.Fatalf("suite has %d kernels, want %d: %v", len(names), want, names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate kernel name %s", n)
		}
		seen[n] = true
	}
}

func TestLoadPerfRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := &PerfRun{
		Suite:   "graphcore",
		Version: perfSuiteVersion,
		Label:   "unit",
		Kernels: []PerfKernel{{Name: "irc/x", NsPerOp: 100, AllocsPerOp: 3, BytesPerOp: 64}},
	}
	runPath := filepath.Join(dir, "run.json")
	data, _ := json.Marshal(run)
	if err := os.WriteFile(runPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadPerfRun(runPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "unit" || len(got.Kernels) != 1 || got.Kernels[0].NsPerOp != 100 {
		t.Fatalf("bare run round-trip mangled: %+v", got)
	}

	// A trajectory file loads as its Current run, so the committed
	// BENCH_*.json can be passed to -baseline directly.
	traj := &PerfTrajectory{
		Suite:    "graphcore",
		Version:  perfSuiteVersion,
		Unit:     "ns/op",
		Baseline: run,
		Current: &PerfRun{Suite: "graphcore", Version: perfSuiteVersion, Label: "current",
			Kernels: []PerfKernel{{Name: "irc/x", NsPerOp: 50}}},
		Speedup: map[string]float64{"irc/x": 2},
	}
	trajPath := filepath.Join(dir, "traj.json")
	data, _ = json.Marshal(traj)
	if err := os.WriteFile(trajPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = loadPerfRun(trajPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "current" || got.Kernels[0].NsPerOp != 50 {
		t.Fatalf("trajectory load did not pick Current: %+v", got)
	}

	if _, err := loadPerfRun(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"not":"a run"}`), 0o644)
	if _, err := loadPerfRun(bad); err == nil {
		t.Fatal("loading a non-run JSON succeeded")
	}
}

// TestCommittedTrajectoryWellFormed keeps BENCH_graphcore.json honest:
// parseable, suite/version matching this binary, baseline+current
// present, and the dense IRC+spill kernels at the ≥2x acceptance gate.
func TestCommittedTrajectoryWellFormed(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_graphcore.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no committed trajectory: %v", err)
	}
	var traj PerfTrajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("BENCH_graphcore.json does not parse: %v", err)
	}
	if traj.Suite != "graphcore" || traj.Version != perfSuiteVersion {
		t.Fatalf("trajectory is %s v%d, binary expects graphcore v%d — bump or regenerate",
			traj.Suite, traj.Version, perfSuiteVersion)
	}
	if traj.Baseline == nil || traj.Current == nil || len(traj.Speedup) == 0 {
		t.Fatal("trajectory missing baseline/current/speedup")
	}
	gated := 0
	for kernel, s := range traj.Speedup {
		op, inst, ok := strings.Cut(kernel, "/")
		if !ok {
			t.Errorf("malformed kernel name %q", kernel)
			continue
		}
		dense := strings.HasPrefix(inst, "dense")
		if dense && (op == "irc" || op == "spill-greedy" || op == "spill-inc") {
			gated++
			if s < 2 {
				t.Errorf("%s speedup %.2f below the 2x acceptance gate", kernel, s)
			}
		}
	}
	if gated == 0 {
		t.Error("no dense IRC/spill kernels found in the trajectory")
	}
}

func TestServiceSuiteShape(t *testing.T) {
	names := serviceKernelNames()
	want := 4*len(serviceFamilies) + len(spillFamilies) + 8 // decode/solve/cached/delta + spill + single + cluster loadgen
	if len(names) != want {
		t.Fatalf("service suite has %d kernels, want %d: %v", len(names), want, names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate kernel name %s", n)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "svc-") && !strings.HasPrefix(n, "cluster-") {
			t.Fatalf("service kernel %q lacks the svc- or cluster- prefix", n)
		}
	}
}

func TestServiceInstancesDeterministic(t *testing.T) {
	a, err := serviceInstances(true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := serviceInstances(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != len(serviceFamilies) {
		t.Fatalf("instance counts: %d vs %d (want %d)", len(a), len(b), len(serviceFamilies))
	}
	for i := range a {
		if a[i].family != b[i].family {
			t.Fatalf("instance %d family %q vs %q", i, a[i].family, b[i].family)
		}
		if string(a[i].solveBody) != string(b[i].solveBody) || string(a[i].cacheBody) != string(b[i].cacheBody) {
			t.Fatalf("%s: request bodies differ across builds", a[i].family)
		}
		if a[i].file.G.N() == 0 {
			t.Fatalf("%s: empty instance", a[i].family)
		}
	}
}

// TestAllocRegressionGate pins the >10% allocs/op gate logic on the
// pooled kernels: regressions fail, improvements and non-pooled kernels
// pass, tiny baselines are ignored.
func TestAllocRegressionGate(t *testing.T) {
	base := &PerfRun{Suite: "service", Version: serviceSuiteVersion, Kernels: []PerfKernel{
		{Name: "svc-solve/chordal", NsPerOp: 100, AllocsPerOp: 1000, BytesPerOp: 100000},
		{Name: "svc-decode/chordal", NsPerOp: 10, AllocsPerOp: 100, BytesPerOp: 1000},
		{Name: "irc/dense", NsPerOp: 50, AllocsPerOp: 4, BytesPerOp: 64},
	}}
	cur := &PerfRun{Suite: "service", Version: serviceSuiteVersion, Kernels: []PerfKernel{
		{Name: "svc-solve/chordal", NsPerOp: 90, AllocsPerOp: 1200, BytesPerOp: 90000}, // 20% alloc regression
		{Name: "svc-decode/chordal", NsPerOp: 9, AllocsPerOp: 500, BytesPerOp: 900},    // not a pooled kernel
		{Name: "irc/dense", NsPerOp: 40, AllocsPerOp: 8, BytesPerOp: 64},               // within absolute slack: ignored
	}}
	traj := buildTrajectory(base, cur)
	regs := allocRegressions(traj)
	if len(regs) != 1 || !strings.Contains(regs[0], "svc-solve/chordal") {
		t.Fatalf("gate found %v, want exactly the svc-solve alloc regression", regs)
	}
	if traj.AllocRatio["svc-solve/chordal"] != 1.2 {
		t.Fatalf("alloc ratio = %v, want 1.2", traj.AllocRatio["svc-solve/chordal"])
	}
	if traj.BytesRatio["svc-solve/chordal"] != 0.9 {
		t.Fatalf("bytes ratio = %v, want 0.9", traj.BytesRatio["svc-solve/chordal"])
	}

	fixed := &PerfRun{Suite: "service", Version: serviceSuiteVersion, Kernels: []PerfKernel{
		{Name: "svc-solve/chordal", NsPerOp: 50, AllocsPerOp: 200, BytesPerOp: 20000},
	}}
	if regs := allocRegressions(buildTrajectory(base, fixed)); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}

	// A zero-alloc baseline — the pooled steady state — must still gate:
	// ratios are undefined, but the absolute-slack term catches it.
	zeroBase := &PerfRun{Suite: "service", Version: serviceSuiteVersion, Kernels: []PerfKernel{
		{Name: "irc/dense", NsPerOp: 50, AllocsPerOp: 0, BytesPerOp: 0},
	}}
	regressed := &PerfRun{Suite: "service", Version: serviceSuiteVersion, Kernels: []PerfKernel{
		{Name: "irc/dense", NsPerOp: 50, AllocsPerOp: 10000, BytesPerOp: 1 << 20},
	}}
	if regs := allocRegressions(buildTrajectory(zeroBase, regressed)); len(regs) != 2 {
		t.Fatalf("zero-alloc baseline regression not caught: %v", regs)
	}
}

// TestCommittedServiceTrajectoryWellFormed keeps BENCH_service.json
// honest: parseable, suite/version matching this binary, and the pooled
// request-path kernels at the acceptance gate. The v2 trajectory's
// baseline is the pre-session serving tier re-measured on the same
// machine as the current run (cross-machine ns ratios are noise; the
// pre-pooling → pooled story this file carried at v1 is recorded in
// CHANGES.md). Allocation counts are deterministic, so the allocs/op
// side is strict: nothing on the pooled path may regress beyond the
// gate's slack, and the untouched solve/spill kernels must not allocate
// more than baseline at all. Wall-clock on multi-millisecond racing
// kernels varies ~±15% run to run even on one machine, so the ns/op
// side only asserts no kernel regressed beyond that noise floor. The
// session PR's acceptance rides here too: the warm-session svc-delta
// kernel must beat the fresh-solve svc-solve kernel on at least 3
// families.
func TestCommittedServiceTrajectoryWellFormed(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_service.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Skipf("no committed service trajectory: %v", err)
	}
	var traj PerfTrajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		t.Fatalf("BENCH_service.json does not parse: %v", err)
	}
	if traj.Suite != "service" || traj.Version != serviceSuiteVersion {
		t.Fatalf("trajectory is %s v%d, binary expects service v%d — bump or regenerate",
			traj.Suite, traj.Version, serviceSuiteVersion)
	}
	if traj.Baseline == nil || traj.Current == nil || len(traj.Speedup) == 0 || len(traj.AllocRatio) == 0 {
		t.Fatal("trajectory missing baseline/current/speedup/alloc_ratio")
	}
	if regs := allocRegressions(&traj); len(regs) > 0 {
		t.Errorf("alloc gate: %v", regs)
	}
	gated := 0
	for kernel, ratio := range traj.AllocRatio {
		if !strings.HasPrefix(kernel, "svc-solve/") && !strings.HasPrefix(kernel, "svc-spill/") {
			continue
		}
		gated++
		if ratio > 1 {
			t.Errorf("%s: allocs/op ratio %.2f, want <= 1 (pooled path must not allocate more)", kernel, ratio)
		}
		if s := traj.Speedup[kernel]; s < 0.85 {
			t.Errorf("%s: speedup %.2f, regressed beyond the ~±15%% run-to-run noise", kernel, s)
		}
	}
	if gated == 0 {
		t.Error("no svc-solve/svc-spill kernels found in the trajectory")
	}
	// The delta-session acceptance: per family, one warm-session delta
	// apply must be cheaper than re-solving the instance from scratch,
	// on at least 3 families.
	cur := map[string]PerfKernel{}
	for _, k := range traj.Current.Kernels {
		cur[k.Name] = k
	}
	deltaWins, deltaKernels := 0, 0
	for _, f := range serviceFamilies {
		d, okD := cur["svc-delta/"+f]
		s, okS := cur["svc-solve/"+f]
		if !okD {
			t.Errorf("current run is missing svc-delta/%s", f)
			continue
		}
		deltaKernels++
		if okS && d.NsPerOp < s.NsPerOp {
			deltaWins++
		}
	}
	if deltaKernels > 0 && deltaWins < 3 {
		t.Errorf("svc-delta beats svc-solve on %d families, want >= 3", deltaWins)
	}
	// The committed current run must carry the cluster loadgen scenario —
	// the sharded tier's throughput/latency alongside the single-node
	// numbers (it has no baseline counterpart, so no speedup entry).
	clusterKernels := 0
	for _, k := range traj.Current.Kernels {
		if strings.HasPrefix(k.Name, "cluster-loadgen/") {
			clusterKernels++
		}
	}
	if clusterKernels != 4 {
		t.Errorf("current run has %d cluster-loadgen kernels, want 4", clusterKernels)
	}
}
