package main

// The -perf mode: a fixed kernel suite over deterministic instances that
// measures the graph substrate itself (build, clone, canonical hashing)
// and the two solver hot paths that dominate service latency (IRC
// allocation, greedy spilling). Results feed the BENCH_*.json perf
// trajectory: a run is compared against a stored baseline with
// -baseline, and the combined before/after trajectory is what gets
// committed (see docs/PERFORMANCE.md).
//
// The suite is intentionally small and fixed: the same named kernels,
// the same seeds, the same instance sizes, so ns/op numbers from
// different commits are comparable. Sizes change only with a suite
// version bump.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/regalloc"
	"regcoal/internal/spill"
)

// perfSuiteVersion bumps whenever kernel names, seeds, or instance sizes
// change, invalidating cross-version comparisons.
const perfSuiteVersion = 1

// PerfKernel is one measured kernel of a perf run.
type PerfKernel struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// PerfRun is the result of one -perf invocation.
type PerfRun struct {
	Suite   string       `json:"suite"`
	Version int          `json:"version"`
	Label   string       `json:"label"`
	Go      string       `json:"go"`
	Quick   bool         `json:"quick"`
	Kernels []PerfKernel `json:"kernels"`
}

// PerfTrajectory is the committed before/after shape of BENCH_*.json.
type PerfTrajectory struct {
	Suite    string             `json:"suite"`
	Version  int                `json:"version"`
	Unit     string             `json:"unit"`
	Baseline *PerfRun           `json:"baseline"`
	Current  *PerfRun           `json:"current"`
	Speedup  map[string]float64 `json:"speedup"`
}

// perfInstance is one deterministic graph the kernels run over.
type perfInstance struct {
	name   string
	f      *graph.File // graph + the tight k the IRC kernel allocates at
	spillK int         // a deliberately short k so the spill kernels evict
	edges  [][2]graph.V
}

// perfInstances builds the fixed instance set. Seeds are constants;
// sizes shrink under quick so CI smoke stays fast.
func perfInstances(quick bool) []perfInstance {
	scale := func(n int) int {
		if quick {
			return n / 4
		}
		return n
	}
	type spec struct {
		name string
		seed int64
		gen  func(rng *rand.Rand, n int) *graph.Graph
		n    int
	}
	specs := []spec{
		{"dense300-p50", 0x5eed0001, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomER(rng, n, 0.50)
		}, scale(300)},
		{"dense500-p30", 0x5eed0002, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomER(rng, n, 0.30)
		}, scale(500)},
		{"chordal400", 0x5eed0003, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomChordal(rng, n, n/2+1, 8)
		}, scale(400)},
		{"interval500", 0x5eed0004, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomInterval(rng, n, 2*n, n/8+1)
		}, scale(500)},
	}
	insts := make([]perfInstance, 0, len(specs))
	for _, s := range specs {
		rng := rand.New(rand.NewSource(s.seed))
		g := s.gen(rng, s.n)
		graph.SprinkleAffinities(rng, g, s.n/2, 8)
		col := greedy.ColoringNumber(g)
		if col < 2 {
			col = 2
		}
		spillK := col / 2
		if spillK < 2 {
			spillK = 2
		}
		insts = append(insts, perfInstance{
			name:   s.name,
			f:      &graph.File{G: g, K: col},
			spillK: spillK,
			edges:  g.Edges(),
		})
	}
	return insts
}

// perfKernels enumerates the kernel suite: name → op closure. Each op is
// one full unit of work (testing.Benchmark supplies the iteration loop).
func perfKernels(insts []perfInstance) []PerfKernel {
	type kernel struct {
		name string
		op   func()
	}
	var kernels []kernel
	for i := range insts {
		inst := insts[i]
		g, k := inst.f.G, inst.f.K
		n := g.N()
		edges := inst.edges
		spillFile := &graph.File{G: g, K: inst.spillK}
		kernels = append(kernels,
			kernel{"build/" + inst.name, func() {
				h := graph.New(n)
				for _, e := range edges {
					h.AddEdge(e[0], e[1])
				}
			}},
			kernel{"clone/" + inst.name, func() {
				g.Clone()
			}},
			kernel{"irc/" + inst.name, func() {
				regalloc.NewIRC(g, k).Run()
			}},
			kernel{"spill-greedy/" + inst.name, func() {
				if _, err := spill.Greedy(spillFile, nil); err != nil {
					panic(err)
				}
			}},
			kernel{"spill-inc/" + inst.name, func() {
				if _, err := spill.Incremental(spillFile, nil); err != nil {
					panic(err)
				}
			}},
			kernel{"canon/" + inst.name, func() {
				graph.CanonicalForm(inst.f)
			}},
		)
	}
	out := make([]PerfKernel, 0, len(kernels))
	for _, kr := range kernels {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kr.op()
			}
		})
		out = append(out, PerfKernel{
			Name:        kr.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out
}

// runPerf executes the suite and writes the run (or, with a baseline,
// the full before/after trajectory) as JSON to w, with a human-readable
// table on stderr.
func runPerf(quick bool, label, baselinePath string, w io.Writer, stderr io.Writer) error {
	// Validate the baseline before timing anything: the suite takes
	// minutes at full sizes, an incomparable baseline should fail fast.
	var baseline *PerfRun
	if baselinePath != "" {
		var err error
		if baseline, err = loadPerfRun(baselinePath); err != nil {
			return err
		}
		if baseline.Quick != quick {
			return fmt.Errorf("perf: baseline %s is quick=%v, this run is quick=%v — not comparable",
				baselinePath, baseline.Quick, quick)
		}
		if baseline.Version != perfSuiteVersion {
			return fmt.Errorf("perf: baseline suite version %d != current %d — not comparable",
				baseline.Version, perfSuiteVersion)
		}
	}

	insts := perfInstances(quick)
	run := &PerfRun{
		Suite:   "graphcore",
		Version: perfSuiteVersion,
		Label:   label,
		Go:      runtime.Version(),
		Quick:   quick,
		Kernels: perfKernels(insts),
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	fmt.Fprintf(stderr, "%-28s %14s %10s %12s\n", "kernel", "ns/op", "allocs/op", "B/op")
	base := map[string]PerfKernel{}
	if baseline != nil {
		for _, k := range baseline.Kernels {
			base[k.Name] = k
		}
	}
	for _, k := range run.Kernels {
		line := fmt.Sprintf("%-28s %14.0f %10d %12d", k.Name, k.NsPerOp, k.AllocsPerOp, k.BytesPerOp)
		if b, ok := base[k.Name]; ok && k.NsPerOp > 0 {
			line += fmt.Sprintf("   %6.2fx vs baseline", b.NsPerOp/k.NsPerOp)
		}
		fmt.Fprintln(stderr, line)
	}
	if baseline == nil {
		return enc.Encode(run)
	}
	traj := &PerfTrajectory{
		Suite:    run.Suite,
		Version:  run.Version,
		Unit:     "ns/op",
		Baseline: baseline,
		Current:  run,
		Speedup:  map[string]float64{},
	}
	for _, k := range run.Kernels {
		if b, ok := base[k.Name]; ok && k.NsPerOp > 0 {
			traj.Speedup[k.Name] = round2(b.NsPerOp / k.NsPerOp)
		}
	}
	return enc.Encode(traj)
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// loadPerfRun reads a run file — either a bare PerfRun or a trajectory
// (in which case the trajectory's Current run is the comparison base, so
// future PRs can pass the committed BENCH_*.json directly).
func loadPerfRun(path string) (*PerfRun, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var traj PerfTrajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.Current != nil {
		return traj.Current, nil
	}
	var run PerfRun
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("perf: %s is neither a run nor a trajectory: %w", path, err)
	}
	if run.Suite == "" {
		return nil, fmt.Errorf("perf: %s has no suite field", path)
	}
	return &run, nil
}

// perfKernelNames lists the kernel names of the suite without running
// anything (used by tests to pin the suite shape).
func perfKernelNames(insts []perfInstance) []string {
	var names []string
	for _, inst := range insts {
		for _, k := range []string{"build", "clone", "irc", "spill-greedy", "spill-inc", "canon"} {
			names = append(names, k+"/"+inst.name)
		}
	}
	sort.Strings(names)
	return names
}
