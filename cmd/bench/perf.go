package main

// The -perf mode: fixed kernel suites over deterministic instances that
// feed the BENCH_*.json perf trajectories: a run is compared against a
// stored baseline with -baseline, and the combined before/after
// trajectory is what gets committed (see docs/PERFORMANCE.md).
//
// Two kernel groups exist, selected with -group:
//
//   - graphcore (this file): the graph substrate itself (build, clone,
//     canonical hashing) and the two solver hot paths that dominate
//     service latency (IRC allocation, greedy spilling).
//   - service (perfservice.go): the end-to-end request path — JSON
//     decode → canonicalization → portfolio race → encode — plus a
//     loadgen-driven QPS/latency-percentile kernel against an
//     in-process server.
//
// Each suite is intentionally small and fixed: the same named kernels,
// the same seeds, the same instance sizes, so ns/op numbers from
// different commits are comparable. Sizes change only with a suite
// version bump. Alongside ns/op, allocs/op and B/op are compared against
// the baseline: the pooled solve path (see "Request path & pooling" in
// docs/PERFORMANCE.md) gates on alloc regressions, not just time.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"regcoal/internal/graph"
	"regcoal/internal/greedy"
	"regcoal/internal/regalloc"
	"regcoal/internal/spill"
)

// perfSuiteVersion bumps whenever kernel names, seeds, or instance sizes
// change, invalidating cross-version comparisons.
const perfSuiteVersion = 1

// PerfKernel is one measured kernel of a perf run. OpsPerSec is set only
// by throughput-shaped kernels (the service loadgen kernels), where ns/op
// alone would hide concurrency; HitRate (cache hits + singleflight
// collapses over successful requests) only by the loadgen kernels, where
// the cache mix explains the latency distribution.
type PerfKernel struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec,omitempty"`
	HitRate     float64 `json:"hit_rate,omitempty"`
	// PhaseNS breaks the loadgen kernels' latency down by server-side
	// request phase (decode, canon, peer, cache, race, encode): the p50
	// of each phase's duration in ns, parsed from the X-Regcoal-Phases
	// response headers the service attaches. Only the inv-throughput
	// kernel of each loadgen prefix carries it.
	PhaseNS map[string]float64 `json:"phase_ns,omitempty"`
}

// PerfRun is the result of one -perf invocation.
type PerfRun struct {
	Suite   string       `json:"suite"`
	Version int          `json:"version"`
	Label   string       `json:"label"`
	Go      string       `json:"go"`
	Quick   bool         `json:"quick"`
	Kernels []PerfKernel `json:"kernels"`
}

// PerfTrajectory is the committed before/after shape of BENCH_*.json.
// Speedup is baseline/current ns per op (higher = faster now); AllocRatio
// and BytesRatio are current/baseline allocations per op (lower = leaner
// now) — the three axes the perf gates check.
type PerfTrajectory struct {
	Suite      string             `json:"suite"`
	Version    int                `json:"version"`
	Unit       string             `json:"unit"`
	Baseline   *PerfRun           `json:"baseline"`
	Current    *PerfRun           `json:"current"`
	Speedup    map[string]float64 `json:"speedup"`
	AllocRatio map[string]float64 `json:"alloc_ratio,omitempty"`
	BytesRatio map[string]float64 `json:"bytes_ratio,omitempty"`
}

// perfInstance is one deterministic graph the kernels run over.
type perfInstance struct {
	name   string
	f      *graph.File // graph + the tight k the IRC kernel allocates at
	spillK int         // a deliberately short k so the spill kernels evict
	edges  [][2]graph.V
}

// perfInstances builds the fixed instance set. Seeds are constants;
// sizes shrink under quick so CI smoke stays fast.
func perfInstances(quick bool) []perfInstance {
	scale := func(n int) int {
		if quick {
			return n / 4
		}
		return n
	}
	type spec struct {
		name string
		seed int64
		gen  func(rng *rand.Rand, n int) *graph.Graph
		n    int
	}
	specs := []spec{
		{"dense300-p50", 0x5eed0001, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomER(rng, n, 0.50)
		}, scale(300)},
		{"dense500-p30", 0x5eed0002, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomER(rng, n, 0.30)
		}, scale(500)},
		{"chordal400", 0x5eed0003, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomChordal(rng, n, n/2+1, 8)
		}, scale(400)},
		{"interval500", 0x5eed0004, func(rng *rand.Rand, n int) *graph.Graph {
			return graph.RandomInterval(rng, n, 2*n, n/8+1)
		}, scale(500)},
	}
	insts := make([]perfInstance, 0, len(specs))
	for _, s := range specs {
		rng := rand.New(rand.NewSource(s.seed))
		g := s.gen(rng, s.n)
		graph.SprinkleAffinities(rng, g, s.n/2, 8)
		col := greedy.ColoringNumber(g)
		if col < 2 {
			col = 2
		}
		spillK := col / 2
		if spillK < 2 {
			spillK = 2
		}
		insts = append(insts, perfInstance{
			name:   s.name,
			f:      &graph.File{G: g, K: col},
			spillK: spillK,
			edges:  g.Edges(),
		})
	}
	return insts
}

// kernel is one named op of a suite. Each op is one full unit of work
// (testing.Benchmark supplies the iteration loop).
type kernel struct {
	name string
	op   func()
}

// measureKernels benchmarks each kernel in order with allocation
// reporting.
func measureKernels(kernels []kernel) []PerfKernel {
	out := make([]PerfKernel, 0, len(kernels))
	for _, kr := range kernels {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kr.op()
			}
		})
		out = append(out, PerfKernel{
			Name:        kr.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	return out
}

// perfKernels enumerates the graphcore kernel suite.
func perfKernels(insts []perfInstance) []PerfKernel {
	var kernels []kernel
	for i := range insts {
		inst := insts[i]
		g, k := inst.f.G, inst.f.K
		n := g.N()
		edges := inst.edges
		spillFile := &graph.File{G: g, K: inst.spillK}
		kernels = append(kernels,
			kernel{"build/" + inst.name, func() {
				h := graph.New(n)
				for _, e := range edges {
					h.AddEdge(e[0], e[1])
				}
			}},
			kernel{"clone/" + inst.name, func() {
				g.Clone()
			}},
			kernel{"irc/" + inst.name, func() {
				regalloc.NewIRC(g, k).Run()
			}},
			kernel{"spill-greedy/" + inst.name, func() {
				if _, err := spill.Greedy(spillFile, nil); err != nil {
					panic(err)
				}
			}},
			kernel{"spill-inc/" + inst.name, func() {
				if _, err := spill.Incremental(spillFile, nil); err != nil {
					panic(err)
				}
			}},
			kernel{"canon/" + inst.name, func() {
				graph.CanonicalForm(inst.f)
			}},
		)
	}
	return measureKernels(kernels)
}

// runPerf executes the selected suite and writes the run (or, with a
// baseline, the full before/after trajectory) as JSON to w, with a
// human-readable table on stderr.
func runPerf(group string, quick bool, label, baselinePath string, w io.Writer, stderr io.Writer) error {
	version := perfSuiteVersion
	if group == "service" {
		version = serviceSuiteVersion
	} else if group != "graphcore" {
		return fmt.Errorf("perf: unknown kernel group %q (want graphcore or service)", group)
	}
	// Validate the baseline before timing anything: the suite takes
	// minutes at full sizes, an incomparable baseline should fail fast.
	var baseline *PerfRun
	if baselinePath != "" {
		var err error
		if baseline, err = loadPerfRun(baselinePath); err != nil {
			return err
		}
		if baseline.Suite != group {
			return fmt.Errorf("perf: baseline %s is suite %q, this run is %q — not comparable",
				baselinePath, baseline.Suite, group)
		}
		if baseline.Quick != quick {
			return fmt.Errorf("perf: baseline %s is quick=%v, this run is quick=%v — not comparable",
				baselinePath, baseline.Quick, quick)
		}
		if baseline.Version != version {
			return fmt.Errorf("perf: baseline suite version %d != current %d — not comparable",
				baseline.Version, version)
		}
	}

	var kernels []PerfKernel
	if group == "service" {
		var err error
		if kernels, err = serviceKernels(quick); err != nil {
			return err
		}
	} else {
		kernels = perfKernels(perfInstances(quick))
	}
	run := &PerfRun{
		Suite:   group,
		Version: version,
		Label:   label,
		Go:      runtime.Version(),
		Quick:   quick,
		Kernels: kernels,
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	fmt.Fprintf(stderr, "%-32s %14s %10s %12s\n", "kernel", "ns/op", "allocs/op", "B/op")
	base := map[string]PerfKernel{}
	if baseline != nil {
		for _, k := range baseline.Kernels {
			base[k.Name] = k
		}
	}
	for _, k := range run.Kernels {
		line := fmt.Sprintf("%-32s %14.0f %10d %12d", k.Name, k.NsPerOp, k.AllocsPerOp, k.BytesPerOp)
		if b, ok := base[k.Name]; ok && k.NsPerOp > 0 {
			line += fmt.Sprintf("   %6.2fx ns", b.NsPerOp/k.NsPerOp)
			if b.AllocsPerOp > 0 {
				line += fmt.Sprintf("  %.2fx allocs", float64(k.AllocsPerOp)/float64(b.AllocsPerOp))
			}
		}
		fmt.Fprintln(stderr, line)
	}
	if baseline == nil {
		return enc.Encode(run)
	}
	traj := buildTrajectory(baseline, run)
	for _, reg := range allocRegressions(traj) {
		fmt.Fprintf(stderr, "perf: WARNING: %s\n", reg)
	}
	return enc.Encode(traj)
}

// buildTrajectory combines a baseline and a current run into the
// committed before/after shape, with per-kernel time and allocation
// ratios.
func buildTrajectory(baseline, run *PerfRun) *PerfTrajectory {
	base := map[string]PerfKernel{}
	for _, k := range baseline.Kernels {
		base[k.Name] = k
	}
	traj := &PerfTrajectory{
		Suite:      run.Suite,
		Version:    run.Version,
		Unit:       "ns/op",
		Baseline:   baseline,
		Current:    run,
		Speedup:    map[string]float64{},
		AllocRatio: map[string]float64{},
		BytesRatio: map[string]float64{},
	}
	for _, k := range run.Kernels {
		b, ok := base[k.Name]
		if !ok {
			continue
		}
		if k.NsPerOp > 0 {
			traj.Speedup[k.Name] = round2(b.NsPerOp / k.NsPerOp)
		}
		if b.AllocsPerOp > 0 {
			traj.AllocRatio[k.Name] = round2(float64(k.AllocsPerOp) / float64(b.AllocsPerOp))
		} else if k.AllocsPerOp == 0 {
			traj.AllocRatio[k.Name] = 0
		}
		if b.BytesPerOp > 0 {
			traj.BytesRatio[k.Name] = round2(float64(k.BytesPerOp) / float64(b.BytesPerOp))
		} else if k.BytesPerOp == 0 {
			traj.BytesRatio[k.Name] = 0
		}
	}
	return traj
}

// pooledKernel reports whether a kernel runs on the pooled solve path —
// the kernels whose allocs/op the gate protects against regression.
func pooledKernel(name string) bool {
	for _, p := range []string{"irc/", "spill-greedy/", "spill-inc/", "svc-solve/", "svc-cached/", "svc-spill/", "svc-delta/"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// allocRegressions lists pooled kernels whose allocs/op or B/op regressed
// more than 10% against the trajectory's baseline. An empty result is the
// alloc gate passing.
func allocRegressions(traj *PerfTrajectory) []string {
	var out []string
	if traj.Baseline == nil || traj.Current == nil {
		return out
	}
	base := map[string]PerfKernel{}
	for _, k := range traj.Baseline.Kernels {
		base[k.Name] = k
	}
	for _, k := range traj.Current.Kernels {
		if !pooledKernel(k.Name) {
			continue
		}
		b, ok := base[k.Name]
		if !ok {
			continue
		}
		// A bare 10% ratio misfires in both directions: a tiny baseline
		// turns one extra alloc into "a regression", and a zero-alloc
		// baseline — the pooled steady state this suite drives toward —
		// makes ANY regression invisible as a ratio. Gate on ratio plus
		// a small absolute slack instead: 1.1×baseline + 8 allocs
		// (+1 KiB for bytes) covers both.
		if float64(k.AllocsPerOp) > 1.1*float64(b.AllocsPerOp)+8 {
			out = append(out, fmt.Sprintf("%s: allocs/op regressed %d → %d (beyond 1.1×baseline+8)", k.Name, b.AllocsPerOp, k.AllocsPerOp))
		}
		if float64(k.BytesPerOp) > 1.1*float64(b.BytesPerOp)+1024 {
			out = append(out, fmt.Sprintf("%s: B/op regressed %d → %d (beyond 1.1×baseline+1KiB)", k.Name, b.BytesPerOp, k.BytesPerOp))
		}
	}
	return out
}

func round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}

// loadPerfRun reads a run file — either a bare PerfRun or a trajectory
// (in which case the trajectory's Current run is the comparison base, so
// future PRs can pass the committed BENCH_*.json directly).
func loadPerfRun(path string) (*PerfRun, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var traj PerfTrajectory
	if err := json.Unmarshal(data, &traj); err == nil && traj.Current != nil {
		return traj.Current, nil
	}
	var run PerfRun
	if err := json.Unmarshal(data, &run); err != nil {
		return nil, fmt.Errorf("perf: %s is neither a run nor a trajectory: %w", path, err)
	}
	if run.Suite == "" {
		return nil, fmt.Errorf("perf: %s has no suite field", path)
	}
	return &run, nil
}

// perfKernelNames lists the kernel names of the suite without running
// anything (used by tests to pin the suite shape).
func perfKernelNames(insts []perfInstance) []string {
	var names []string
	for _, inst := range insts {
		for _, k := range []string{"build", "clone", "irc", "spill-greedy", "spill-inc", "canon"} {
			names = append(names, k+"/"+inst.name)
		}
	}
	sort.Strings(names)
	return names
}
