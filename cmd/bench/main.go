// Command bench drives the full strategy matrix (every coalescing
// strategy × the IRC allocator × the exact solver) over generated corpus
// families on the concurrent execution engine, streaming one
// machine-readable record per (instance, strategy) evaluation plus a
// per-family aggregate summary.
//
// Usage:
//
//	bench -families all -parallel 8 -timeout 30s -out json > results.jsonl
//	bench -families chordal,interval -out csv -o results.csv
//	bench -families all -quick -timing=false        # byte-reproducible
//	bench -list                                     # list corpus families
//	bench -save corpus/ -families all               # persist the corpus
//
// Records go to stdout (or -o) as JSONL or CSV; the aggregate summary goes
// to stderr as an aligned table (or to -summary as CSV). With -timing=false
// and -timeout 0 the record stream and the summary are byte-identical for
// every -parallel level and every run — the reproducibility contract the
// perf-trajectory files (BENCH_*.json) rely on. (With a timeout set,
// whether a borderline run times out depends on machine load.)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"regcoal/internal/corpus"
	"regcoal/internal/engine"
)

func main() {
	var (
		families = flag.String("families", "all", "comma-separated corpus families, or 'all'")
		parallel = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-run timeout (0 = none)")
		out      = flag.String("out", "json", "record stream format: json (JSONL) or csv")
		output   = flag.String("o", "", "record stream destination (default stdout)")
		summary  = flag.String("summary", "", "write aggregate summary CSV to this file (default: aligned table on stderr)")
		seed     = flag.Int64("seed", 20060408, "base corpus seed")
		quick    = flag.Bool("quick", false, "small per-family instance counts (CI smoke)")
		timing   = flag.Bool("timing", true, "capture wall-clock per run (disable for byte-reproducible output)")
		save     = flag.String("save", "", "persist the generated corpus (native + DIMACS + manifest) under this directory")
		list     = flag.Bool("list", false, "list corpus families and exit")
	)
	flag.Parse()

	if *list {
		for _, f := range corpus.Families() {
			fmt.Printf("%-12s %3d instances (%d quick)  %s\n", f.Name, f.Count, f.QuickCount, f.Description)
		}
		return
	}

	fams, err := corpus.Select(*families)
	if err != nil {
		fatal(err)
	}
	params := corpus.Params{Seed: *seed, Quick: *quick}

	var insts []*corpus.Instance
	if *save != "" {
		for _, f := range fams {
			fi, m, err := corpus.WriteFamilyDir(*save, f, params)
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "bench: saved %d instances of %s to %s\n", len(m.Instances), f.Name, *save)
			insts = append(insts, fi...)
		}
	} else {
		if insts, err = corpus.BuildAll(fams, params); err != nil {
			fatal(err)
		}
	}

	dst := os.Stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	defer bw.Flush()

	var sink engine.Sink
	switch *out {
	case "json":
		sink = engine.JSONLSink(bw)
	case "csv":
		sink = engine.CSVSink(bw)
	default:
		fatal(fmt.Errorf("unknown -out format %q (want json or csv)", *out))
	}

	cfg := engine.Config{Parallel: *parallel, Timeout: *timeout, Timing: *timing}
	matrix := engine.StandardMatrix()
	recs, err := engine.Run(context.Background(), cfg, insts, matrix, sink)
	if err != nil {
		fatal(err)
	}
	if err := bw.Flush(); err != nil {
		fatal(err)
	}

	aggs := engine.Aggregates(recs)
	if *summary != "" {
		f, err := os.Create(*summary)
		if err != nil {
			fatal(err)
		}
		if err := engine.WriteAggregatesCSV(f, aggs); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "\nbench: %d records over %d instances × %d strategies\n\n",
			len(recs), len(insts), len(matrix))
		if err := engine.WriteAggregatesText(os.Stderr, aggs); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
