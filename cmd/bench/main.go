// Command bench drives the full strategy matrix (every coalescing
// strategy × the IRC allocator × the exact solver) over generated corpus
// families on the concurrent execution engine, streaming one
// machine-readable record per (instance, strategy) evaluation plus a
// per-family aggregate summary.
//
// Usage:
//
//	bench -families all -parallel 8 -timeout 30s -out json > results.jsonl
//	bench -families chordal,interval -out csv -o results.csv
//	bench -families all -quick -timing=false        # byte-reproducible
//	bench -list                                     # list corpus families
//	bench -save corpus/ -families all               # persist the corpus
//	bench -perf -o run.json                         # graph-core kernel suite
//	bench -perf -baseline BENCH_graphcore.json      # ...with speedup columns
//	bench -perf -group service -o run.json          # request-path kernel suite
//	bench -perf -group service -baseline BENCH_service.json
//
// Records go to stdout (or -o) as JSONL or CSV; the aggregate summary goes
// to stderr as an aligned table (or to -summary as CSV). With -timing=false
// and -timeout 0 the record stream and the summary are byte-identical for
// every -parallel level and every run — the reproducibility contract the
// perf-trajectory files (BENCH_*.json) rely on. (With a timeout set,
// whether a borderline run times out depends on machine load.)
//
// The -perf mode (perf.go) swaps the strategy matrix for the fixed
// graph-core kernel suite and emits a perf run — or, with -baseline, a
// before/after trajectory — as JSON; see docs/PERFORMANCE.md.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"regcoal/internal/corpus"
	"regcoal/internal/engine"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags are parsed from
// args, records stream to stdout (unless -o), human output to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		families = fs.String("families", "all", "comma-separated corpus families, or 'all'")
		parallel = fs.Int("parallel", 0, "worker count (0 = GOMAXPROCS)")
		timeout  = fs.Duration("timeout", 30*time.Second, "per-run timeout (0 = none)")
		out      = fs.String("out", "json", "record stream format: json (JSONL) or csv")
		output   = fs.String("o", "", "record stream destination (default stdout)")
		summary  = fs.String("summary", "", "write aggregate summary CSV to this file (default: aligned table on stderr)")
		seed     = fs.Int64("seed", 20060408, "base corpus seed")
		quick    = fs.Bool("quick", false, "small per-family instance counts (CI smoke)")
		timing   = fs.Bool("timing", true, "capture wall-clock per run (disable for byte-reproducible output)")
		save     = fs.String("save", "", "persist the generated corpus (native + DIMACS + manifest) under this directory")
		list     = fs.Bool("list", false, "list corpus families and exit")
		perf     = fs.Bool("perf", false, "run a fixed kernel suite (see -group) instead of the strategy matrix")
		group    = fs.String("group", "graphcore", "with -perf: kernel group to run (graphcore or service)")
		label    = fs.String("label", "", "free-form label recorded in the -perf run JSON")
		baseline = fs.String("baseline", "", "with -perf: prior run or trajectory JSON to compare against (emits a before/after trajectory)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %v", fs.Args())
	}

	if *perf {
		dst := stdout
		if *output != "" {
			f, err := os.Create(*output)
			if err != nil {
				return err
			}
			defer f.Close()
			dst = f
		}
		return runPerf(*group, *quick, *label, *baseline, dst, stderr)
	}

	if *list {
		for _, f := range corpus.Families() {
			fmt.Fprintf(stdout, "%-12s %3d instances (%d quick)  %s\n", f.Name, f.Count, f.QuickCount, f.Description)
		}
		return nil
	}

	fams, err := corpus.Select(*families)
	if err != nil {
		return err
	}
	params := corpus.Params{Seed: *seed, Quick: *quick}

	var insts []*corpus.Instance
	if *save != "" {
		for _, f := range fams {
			fi, m, err := corpus.WriteFamilyDir(*save, f, params)
			if err != nil {
				return err
			}
			fmt.Fprintf(stderr, "bench: saved %d instances of %s to %s\n", len(m.Instances), f.Name, *save)
			insts = append(insts, fi...)
		}
	} else {
		if insts, err = corpus.BuildAll(fams, params); err != nil {
			return err
		}
	}

	dst := stdout
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}
	bw := bufio.NewWriter(dst)
	defer bw.Flush()

	var sink engine.Sink
	switch *out {
	case "json":
		sink = engine.JSONLSink(bw)
	case "csv":
		sink = engine.CSVSink(bw)
	default:
		return fmt.Errorf("unknown -out format %q (want json or csv)", *out)
	}

	cfg := engine.Config{Parallel: *parallel, Timeout: *timeout, Timing: *timing}
	matrix := engine.StandardMatrix()
	recs, err := engine.Run(context.Background(), cfg, insts, matrix, sink)
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	aggs := engine.Aggregates(recs)
	if *summary != "" {
		f, err := os.Create(*summary)
		if err != nil {
			return err
		}
		if err := engine.WriteAggregatesCSV(f, aggs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(stderr, "\nbench: %d records over %d instances × %d strategies\n\n",
			len(recs), len(insts), len(matrix))
		if err := engine.WriteAggregatesText(stderr, aggs); err != nil {
			return err
		}
	}
	return nil
}
