// Command experiments regenerates the paper-reproduction tables recorded in
// EXPERIMENTS.md: one experiment per theorem/figure (see DESIGN.md §3).
//
// Usage:
//
//	experiments -exp all          # run everything
//	experiments -exp T5 -seed 7   # one experiment, custom seed
//	experiments -list             # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"regcoal/internal/expt"
)

func main() {
	var (
		id       = flag.String("exp", "all", "experiment id or 'all'")
		seed     = flag.Int64("seed", 20060408, "random seed")
		quick    = flag.Bool("quick", false, "smaller sweeps")
		parallel = flag.Int("parallel", 0, "worker count for engine-backed experiments (0 = GOMAXPROCS; results are identical for any value)")
		list     = flag.Bool("list", false, "list experiments and exit")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	cfg := expt.Config{Seed: *seed, Quick: *quick, Parallel: *parallel}
	var toRun []expt.Experiment
	if *id == "all" {
		toRun = expt.All()
	} else {
		e, ok := expt.Lookup(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *id)
			os.Exit(1)
		}
		toRun = []expt.Experiment{e}
	}
	render := expt.RunAndRender
	if *asCSV {
		render = expt.RunAndRenderCSV
	}
	for _, e := range toRun {
		if err := render(os.Stdout, e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
