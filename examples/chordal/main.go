// Theorem 5 in action: on a chordal (interval) graph, incremental
// conservative coalescing is decidable in polynomial time. The example
// builds the live ranges of a straight-line program, asks whether two
// specific variables can share a register, and prints the witnessing
// coloring produced from the clique-tree interval covering.
package main

import (
	"fmt"

	"regcoal"
	"regcoal/internal/coalesce"
	"regcoal/internal/graph"
)

func main() {
	// Live ranges of a little straight-line program (time flows right):
	//   x: [0,1]   t1: [2,3]   t2: [4,5]   y: [6,7]
	//   long: [0,7] (a frame-pointer-ish value, alive throughout)
	// x, t1, t2, y are pairwise disjoint; all overlap long.
	ivs := []graph.Interval{
		{Lo: 0, Hi: 1}, // x
		{Lo: 2, Hi: 3}, // t1
		{Lo: 4, Hi: 5}, // t2
		{Lo: 6, Hi: 7}, // y
		{Lo: 0, Hi: 7}, // long
	}
	names := []string{"x", "t1", "t2", "y", "long"}
	g := graph.IntervalGraph(ivs)
	for i, n := range names {
		g.SetName(graph.V(i), n)
	}
	x, y := regcoal.V(0), regcoal.V(3)

	for _, k := range []int{2, 3} {
		dec, err := regcoal.CanCoalesceChordal(g, x, y, k)
		if err != nil {
			panic(err)
		}
		fmt.Printf("k=%d: can x and y share a register? %v\n", k, dec.OK)
		if !dec.OK {
			continue
		}
		var classNames []string
		for _, v := range dec.Class {
			classNames = append(classNames, g.Name(v))
		}
		fmt.Printf("  merge class: %v (padding cliques crossed: %d)\n",
			classNames, len(dec.PaddingCliques))
		col, ok, err := coalesce.ChordalIncrementalColoring(g, x, y, k)
		if err != nil || !ok {
			panic(fmt.Sprint("coloring failed: ", err))
		}
		for v := 0; v < g.N(); v++ {
			fmt.Printf("  %-5s -> r%d\n", g.Name(graph.V(v)), col[v])
		}
	}

	// Contrast with the greedy-k-colorable open question: the brute-force
	// test answers the same question heuristically on any graph.
	fmt.Printf("\nbrute-force incremental test (k=2): %v\n",
		coalesce.IncrementalOne(g, x, y, 2))
}
