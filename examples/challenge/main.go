// Challenge corpus comparison: generate a mixed corpus of coalescing
// instances (SSA-derived and synthetic, in the spirit of the Appel–George
// coalescing challenge) and compare every strategy's coalesced move weight.
package main

import (
	"fmt"
	"math/rand"

	"regcoal"
	"regcoal/internal/challenge"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	k := 6
	corpus, err := challenge.Corpus(rng, 12, k)
	if err != nil {
		panic(err)
	}
	fmt.Printf("corpus: %d instances, k=%d\n\n", len(corpus), k)

	totals := map[regcoal.Strategy]int64{}
	colorable := map[regcoal.Strategy]int{}
	var movable int64
	for _, inst := range corpus {
		st := inst.Describe()
		movable += st.MoveWeight
		fmt.Printf("%-24s n=%-4d e=%-5d moves=%-3d weight=%d\n",
			inst.Name, st.Vertices, st.Edges, st.Moves, st.MoveWeight)
		for _, s := range regcoal.Strategies() {
			res, _ := regcoal.Run(inst.File.G, k, s)
			totals[s] += res.CoalescedWeight
			if res.Colorable {
				colorable[s]++
			}
		}
	}
	fmt.Printf("\n%-14s %12s %10s %12s\n", "strategy", "saved", "share", "colorable")
	for _, s := range regcoal.Strategies() {
		fmt.Printf("%-14s %12d %9.1f%% %9d/%d\n",
			s, totals[s], 100*float64(totals[s])/float64(movable), colorable[s], len(corpus))
	}
}
