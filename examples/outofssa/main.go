// Out-of-SSA walkthrough: a source program goes through SSA construction
// (Theorem 1 checked live: the interference graph is chordal with
// ω = Maxlive), is lowered out of SSA — which inserts the moves — and the
// resulting coalescing instance is solved by each strategy.
package main

import (
	"fmt"

	"regcoal"
	"regcoal/internal/ir"
	"regcoal/internal/ssa"
)

func main() {
	for _, src := range []*ir.Func{ir.Diamond(), ir.Swap()} {
		fmt.Printf("==================== %s ====================\n", src.Name)
		fmt.Printf("--- source ---\n%s\n", src)

		ssaF, err := ssa.Build(src)
		if err != nil {
			panic(err)
		}
		fmt.Printf("--- SSA form ---\n%s\n", ssaF)

		rep, err := ssa.CheckTheorem1(ssaF)
		if err != nil {
			panic(err)
		}
		fmt.Printf("Theorem 1 on the SSA form: %d vertices, %d edges, chordal=%v, ω=%d=Maxlive=%d\n\n",
			rep.Vertices, rep.Edges, rep.Chordal, rep.Omega, rep.Maxlive)

		low, err := ssa.Lower(ssaF)
		if err != nil {
			panic(err)
		}
		fmt.Printf("--- lowered (out of SSA): %d moves inserted ---\n%s\n", low.CountMoves(), low)

		g, _ := ssa.BuildInterference(low)
		k := 4
		fmt.Printf("coalescing instance: %d vertices, %d interferences, %d moves, k=%d\n",
			g.N(), g.E(), g.NumAffinities(), k)
		for _, s := range regcoal.Strategies() {
			res, _ := regcoal.Run(g, k, s)
			fmt.Printf("  %-14s coalesced %d/%d moves (weight %d), colorable=%v\n",
				s, len(res.Coalesced), g.NumAffinities(), res.CoalescedWeight, res.Colorable)
		}
		fmt.Println()
	}
}
