// Theorem 2 end to end, through real code: a multiway cut instance becomes
// an actual program (Figure 1's construction), the program's interference
// graph is rebuilt by the compiler pipeline, and the optimal aggressive
// coalescing of that graph equals the minimum multiway cut — the
// NP-completeness reduction, demonstrated on live code.
package main

import (
	"fmt"

	"regcoal/internal/exact"
	"regcoal/internal/graph"
	"regcoal/internal/mwc"
	"regcoal/internal/reduction"
	"regcoal/internal/ssa"
)

func main() {
	// The multiway cut instance: terminals s1, s2, s3 in a little web.
	src := graph.NewNamed("s1", "s2", "s3", "u", "v", "w")
	src.AddEdge(0, 3) // s1 - u
	src.AddEdge(3, 4) // u - v
	src.AddEdge(4, 1) // v - s2
	src.AddEdge(4, 2) // v - s3
	src.AddEdge(3, 5) // u - w
	in := &mwc.Instance{G: src, Terminals: []graph.V{0, 1, 2}}
	cut, _ := in.SolveExact()
	fmt.Printf("multiway cut instance: %d vertices, %d edges, min cut = %d\n\n",
		src.N(), src.E(), cut)

	// Figure 1's program.
	fn, _ := reduction.BuildProgram(in)
	fmt.Printf("--- generated program ---\n%s\n", fn)

	// The compiler's own interference graph of that program.
	g, _ := ssa.BuildInterference(fn)
	fmt.Printf("interference graph: %d vertices, %d interferences (the terminal clique), %d moves\n",
		g.N(), g.E(), g.NumAffinities())

	// Optimal aggressive coalescing = minimum multiway cut.
	res := exact.OptimalAggressive(g, exact.MinimizeCount)
	fmt.Printf("optimal aggressive coalescing keeps %d moves uncoalesced\n", res.Cost)
	if res.Cost == int64(cut) {
		fmt.Println("=> equals the minimum multiway cut: Theorem 2's equivalence, live ✓")
	} else {
		fmt.Println("=> MISMATCH: this would be a bug")
	}
}
