// Quickstart: build a small interference graph with move affinities, run
// every coalescing strategy, and print what each one saves.
package main

import (
	"fmt"

	"regcoal"
)

func main() {
	// A little diamond of live ranges: a-b and b-c interfere; the program
	// would like a and c in one register (a hot move, weight 10) and c and
	// d in one register (a cold move, weight 1).
	g := regcoal.NewNamedGraph("a", "b", "c", "d")
	g.AddEdge(0, 1)         // a -- b
	g.AddEdge(1, 2)         // b -- c
	g.AddAffinity(0, 2, 10) // a => c
	g.AddAffinity(2, 3, 1)  // c => d
	k := 2

	fmt.Printf("instance:\n%s\n", g.String())
	fmt.Printf("col(G) = %d, greedy-%d-colorable: %v\n\n",
		regcoal.ColoringNumber(g), k, regcoal.IsGreedyKColorable(g, k))

	for _, s := range regcoal.Strategies() {
		res, _ := regcoal.Run(g, k, s)
		fmt.Printf("%-14s saved weight %2d of %2d, still colorable: %v\n",
			s, res.CoalescedWeight, g.TotalAffinityWeight(), res.Colorable)
	}

	// Allocate registers after conservative coalescing.
	alloc, err := regcoal.Allocate(g, k, regcoal.AllocConservative)
	if err != nil {
		panic(err)
	}
	fmt.Println("\nassignment:")
	for v := 0; v < g.N(); v++ {
		fmt.Printf("  %s -> r%d\n", g.Name(regcoal.V(v)), alloc.Coloring[v])
	}
}
